#include "atlarge/eco/ecosystem.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/fault/injector.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/portfolio.hpp"

namespace atlarge::eco {
namespace {

// Cross-LP message key namespaces. ShardedSimulation breaks delivery ties
// by (at, key, src, seq); avatar migrations use avatar ids as keys, so the
// composition layer's control messages live in disjoint high ranges.
constexpr std::uint64_t kReportKeyBase = std::uint64_t{1} << 48;
constexpr std::uint64_t kGrantKeyBase = std::uint64_t{1} << 49;

// -------------------------------------------------------------- fabric --

/// The shared datacenter substrate. Core-LP-only state: every method runs
/// either before the kernel starts or from an LP 0 event.
///
/// Two ledgers, one at a time: with a SchedDriver bound (workflow tenant
/// on the fabric) per-machine free cores live in the scheduler — leases
/// are reserve_cores/release_cores, indistinguishable from running tasks.
/// Without one the fabric keeps its own slot table with the same policy.
///
/// Lease policy (deterministic by construction): serverless instances
/// prefer the lowest-id *warm* machine (one already hosting work), else
/// power up the lowest-id idle machine and charge the provisioning delay;
/// the autoscaler leases whole idle machines lowest-id first and returns
/// them highest-id first (scale-down drains the newest machines).
class ClusterFabric final : public serverless::InstanceBacking {
 public:
  ClusterFabric(const FabricSpec& spec, sim::Simulation& core,
                FabricStats& stats)
      : spec_(spec), core_(core), stats_(stats) {
    slots_.resize(spec_.machines);
    for (auto& s : slots_) s.free = spec_.cores_per_machine;
    mmog_leased_.assign(spec_.machines, 0);
  }

  void bind_sched(sched::SchedDriver* sched) { sched_ = sched; }
  void bind_faas(serverless::PlatformDriver* faas) { faas_ = faas; }
  void set_instance_cores(std::uint32_t cores) { instance_cores_ = cores; }

  // serverless::InstanceBacking ------------------------------------------
  bool acquire(std::size_t /*function*/, std::uint32_t& machine,
               double& extra_latency) override {
    const std::size_t n = spec_.machines;
    std::size_t cold = n;
    std::size_t pick = n;
    for (std::size_t mi = 0; mi < n; ++mi) {
      if (down(mi) || mmog_leased_[mi] != 0) continue;
      const std::uint32_t f = free(mi);
      if (f < instance_cores_) continue;
      if (f == total(mi)) {
        if (cold == n) cold = mi;
      } else {
        pick = mi;  // lowest-id warm machine wins
        break;
      }
    }
    const bool powered_up = pick == n;
    if (powered_up) pick = cold;
    if (pick == n) {
      ++stats_.faas_denials;
      return false;
    }
    take(pick, instance_cores_);
    ++stats_.faas_leases;
    machine = static_cast<std::uint32_t>(pick);
    extra_latency = powered_up ? spec_.provisioning_delay : 0.0;
    return true;
  }

  void release(std::uint32_t machine) override {
    give(machine, instance_cores_);
  }

  // autoscale whole-machine leases ---------------------------------------
  std::size_t lease_machines(std::size_t want) {
    std::size_t got = 0;
    for (std::size_t mi = 0; mi < spec_.machines && got < want; ++mi) {
      if (down(mi) || mmog_leased_[mi] != 0) continue;
      if (free(mi) != total(mi)) continue;  // whole idle machines only
      take(mi, total(mi));
      mmog_leased_[mi] = 1;
      ++got;
      ++stats_.machine_leases;
    }
    return got;
  }

  std::size_t return_machines(std::size_t count) {
    std::size_t returned = 0;
    for (std::size_t mi = spec_.machines; mi-- > 0 && returned < count;) {
      if (mmog_leased_[mi] == 0) continue;
      mmog_leased_[mi] = 0;
      give(mi, total(mi));
      ++returned;
      ++stats_.machine_returns;
    }
    return returned;
  }

  // fault routing --------------------------------------------------------
  void crash(std::uint32_t target, double duration) {
    const std::size_t mi = target % spec_.machines;
    if (down(mi)) return;  // overlapping crash, already down
    ++stats_.crashes;
    if (sched_ != nullptr) {
      sched_->fail_machine(mi, duration);
    } else {
      slots_[mi].down = true;
      core_.schedule_after(duration,
                           [this, mi] { slots_[mi].down = false; });
    }
    // Autoscale leases survive the outage (zone capacity is redundant
    // game-server state); serverless instances on the machine die.
    if (faas_ != nullptr) faas_->fail_machine(static_cast<std::uint32_t>(mi));
  }

 private:
  struct Slot {
    std::uint32_t free = 0;
    bool down = false;
  };

  bool down(std::size_t mi) const {
    return sched_ != nullptr ? sched_->machine_down(mi) : slots_[mi].down;
  }
  std::uint32_t free(std::size_t mi) const {
    return sched_ != nullptr ? sched_->free_cores_on(mi) : slots_[mi].free;
  }
  std::uint32_t total(std::size_t mi) const {
    return sched_ != nullptr ? sched_->total_cores_on(mi)
                             : spec_.cores_per_machine;
  }
  void take(std::size_t mi, std::uint32_t cores) {
    if (sched_ != nullptr) {
      const bool ok = sched_->reserve_cores(mi, cores);
      assert(ok);
      (void)ok;
    } else {
      slots_[mi].free -= cores;
    }
    cores_leased_ += cores;
    stats_.peak_cores_leased = std::max(stats_.peak_cores_leased, cores_leased_);
  }
  void give(std::size_t mi, std::uint32_t cores) {
    if (sched_ != nullptr) {
      sched_->release_cores(mi, cores);
    } else {
      slots_[mi].free = std::min(spec_.cores_per_machine,
                                 slots_[mi].free + cores);
    }
    cores_leased_ -= std::min(cores_leased_, cores);
  }

  const FabricSpec spec_;
  sim::Simulation& core_;
  FabricStats& stats_;
  std::vector<Slot> slots_;
  std::vector<std::uint8_t> mmog_leased_;
  sched::SchedDriver* sched_ = nullptr;
  serverless::PlatformDriver* faas_ = nullptr;
  std::uint32_t instance_cores_ = 1;
  std::uint32_t cores_leased_ = 0;
};

// ------------------------------------------------------------- helpers --

std::unique_ptr<autoscale::Autoscaler> make_autoscaler(
    const std::string& name) {
  auto zoo = autoscale::standard_autoscalers();
  for (auto& scaler : zoo)
    if (scaler->name() == name) return std::move(scaler);
  throw std::invalid_argument("eco: unknown autoscaler \"" + name + "\"");
}

std::unique_ptr<sched::Policy> make_policy(const WorkflowSpec& spec,
                                           const cluster::Environment& env) {
  if (spec.policy == "PORTFOLIO") {
    sched::PortfolioConfig config;
    config.seed = spec.policy_seed;
    return std::make_unique<sched::PortfolioScheduler>(
        sched::standard_policies(spec.policy_seed), env, config);
  }
  auto zoo = sched::standard_policies(spec.policy_seed);
  for (auto& policy : zoo)
    if (policy->name() == spec.policy) return std::move(policy);
  throw std::invalid_argument("eco: unknown policy \"" + spec.policy + "\"");
}

void append_kv(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += key;
  out += ' ';
  out += buf;
  out += '\n';
}

void append_kv(std::string& out, const char* key, std::uint64_t value) {
  out += key;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

// -------------------------------------------------------------- engine --

/// One composed run. Layout: the core tier (fabric, serverless platform,
/// scheduler, autoscale controller) lives on LP 0; zones spread over LPs
/// zone_lp_base..zone_lp_base+zone_lp_count-1. Member order doubles as
/// construction/destruction order: the kernel outlives every driver.
struct EcoEngine {
  explicit EcoEngine(const EcosystemSpec& s) : spec(s) {}

  const EcosystemSpec& spec;
  EcosystemResult result;

  std::unique_ptr<sim::ShardedSimulation> sharded;
  std::size_t zone_lp_base = 0;
  std::size_t zone_lp_count = 1;
  double lookahead = 0.0;

  std::unique_ptr<ClusterFabric> fabric;
  std::unique_ptr<fault::Injector> fabric_injector;

  serverless::PlatformConfig faas_config;
  std::unique_ptr<serverless::PlatformDriver> faas;

  cluster::Environment dag_env;
  sched::SimOptions dag_options;
  std::unique_ptr<sched::Policy> dag_policy;
  std::unique_ptr<sched::SchedDriver> dags;

  mmog::ZoneSimConfig zone_config;
  std::unique_ptr<mmog::ZoneWorld> world;

  std::unique_ptr<autoscale::Autoscaler> scaler;
  std::vector<std::uint64_t> zone_pop;
  std::vector<std::uint64_t> zone_queue;
  std::uint32_t leased = 0;
  std::uint32_t pending = 0;

  std::size_t world_lp(std::size_t zone) const {
    return zone_lp_base + zone % zone_lp_count;
  }

  void validate() const {
    if (spec.horizon <= 0.0)
      throw std::invalid_argument("eco: horizon must be positive");
    if (spec.mmog.enabled && spec.mmog.config.zones == 0)
      throw std::invalid_argument("eco: mmog needs at least one zone");
    if (spec.mmog.enabled &&
        spec.mmog.provisioning == ZoneProvisioning::kAutoscaled) {
      if (spec.mmog.config.crossing_time <= 0.0)
        throw std::invalid_argument(
            "eco: autoscaled zones need crossing_time > 0");
      if (spec.mmog.report_interval <= 2.0 * spec.mmog.config.crossing_time)
        throw std::invalid_argument(
            "eco: report_interval must exceed 2 * crossing_time");
      if (spec.mmog.avatars_per_machine == 0)
        throw std::invalid_argument("eco: avatars_per_machine must be >= 1");
    }
    const bool needs_fabric = uses_fabric();
    if (needs_fabric && spec.fabric.machines == 0)
      throw std::invalid_argument("eco: fabric bindings need machines >= 1");
    if (spec.serverless.enabled &&
        spec.serverless.backing == ServerlessBacking::kCluster &&
        spec.serverless.instance_cores > spec.fabric.cores_per_machine)
      throw std::invalid_argument(
          "eco: instance_cores exceeds cores_per_machine");
  }

  bool uses_fabric() const {
    return (spec.serverless.enabled &&
            spec.serverless.backing == ServerlessBacking::kCluster) ||
           (spec.mmog.enabled &&
            spec.mmog.provisioning == ZoneProvisioning::kAutoscaled) ||
           (spec.dags.enabled &&
            spec.dags.scheduling == DagScheduling::kSharedFabric);
  }

  void build_kernel() {
    // Without zones there is nothing to parallelize: every domain shares
    // LP 0's total event order, so extra shards would only add barriers.
    std::size_t shards = 1;
    if (spec.mmog.enabled) {
      const std::size_t zones = spec.mmog.config.zones;
      const std::size_t wanted = std::max<std::size_t>(1, spec.shards);
      if (wanted >= 2) {
        zone_lp_base = 1;
        zone_lp_count = std::min(wanted - 1, zones);
        shards = 1 + zone_lp_count;
      } else {
        zone_lp_base = 0;
        zone_lp_count = 1;
      }
      lookahead = spec.mmog.config.crossing_time;
    }
    sim::ShardOptions options;
    options.shards = shards;
    options.threads = std::max<std::size_t>(1, spec.threads);
    options.lookahead = lookahead;
    options.queue = spec.queue;
    sharded = std::make_unique<sim::ShardedSimulation>(options);
  }

  // ------------------------------------------------- autoscale controller
  // Cadence (I = report_interval, L = lookahead, D = provisioning_delay):
  // zones report population at t = k*I, reports land on LP 0 at k*I + L,
  // the controller ticks at k*I + 2L, scale-down capacity arrives at the
  // zones at k*I + 2L + L, scale-up capacity at k*I + 2L + D + L. All
  // offsets are fixed across shard layouts, and control messages use key
  // namespaces disjoint from avatar ids, so delivery order is
  // layout-invariant.

  void emit_report(std::size_t zone) {
    sim::Simulation& lp = sharded->lp(world_lp(zone));
    const double now = lp.now();
    const std::uint64_t pop = world->population(zone);
    const std::uint64_t queue = world->queue_length(zone);
    sharded->send(world_lp(zone), 0, now + lookahead, kReportKeyBase + zone,
                  [this, zone, pop, queue] {
                    zone_pop[zone] = pop;
                    zone_queue[zone] = queue;
                  });
    const double next = now + spec.mmog.report_interval;
    if (next <= spec.horizon)
      lp.schedule_at(next, [this, zone] { emit_report(zone); });
  }

  void autoscale_tick() {
    ++result.fabric.autoscale_decisions;
    std::uint64_t pop = 0;
    std::uint64_t queued = 0;
    for (std::size_t z = 0; z < zone_pop.size(); ++z) {
      pop += zone_pop[z];
      queued += zone_queue[z];
    }
    const std::uint32_t cpm = spec.fabric.cores_per_machine;
    const std::uint64_t apm = spec.mmog.avatars_per_machine;
    const std::uint64_t demand_machines = (pop + queued + apm - 1) / apm;
    autoscale::Observation obs;
    obs.now = sharded->lp(0).now();
    obs.demand_cores = static_cast<double>(demand_machines) * cpm;
    obs.supply_machines = leased;
    obs.pending_machines = pending;
    obs.cores_per_machine = cpm;
    obs.queued_tasks = static_cast<std::size_t>(queued);
    std::uint32_t target = scaler->target_machines(obs);
    target = std::min(target,
                      static_cast<std::uint32_t>(spec.fabric.machines));
    const std::uint32_t have = leased + pending;
    if (target > have) {
      const std::size_t got = fabric->lease_machines(target - have);
      if (got > 0) {
        pending += static_cast<std::uint32_t>(got);
        sharded->lp(0).schedule_after(
            spec.fabric.provisioning_delay, [this, got] {
              pending -= static_cast<std::uint32_t>(got);
              leased += static_cast<std::uint32_t>(got);
              push_capacity();
            });
      }
    } else if (target < leased) {
      const std::size_t returned = fabric->return_machines(leased - target);
      if (returned > 0) {
        leased -= static_cast<std::uint32_t>(returned);
        push_capacity();
      }
    }
    const double next = obs.now + spec.mmog.report_interval;
    if (next <= spec.horizon)
      sharded->lp(0).schedule_at(next, [this] { autoscale_tick(); });
  }

  void push_capacity() {
    ++result.fabric.capacity_updates;
    const double now = sharded->lp(0).now();
    const std::uint64_t total =
        static_cast<std::uint64_t>(leased) * spec.mmog.avatars_per_machine;
    const std::size_t zones = zone_config.zones;
    for (std::size_t z = 0; z < zones; ++z) {
      std::uint64_t cap = total / zones + (z < total % zones ? 1 : 0);
      cap = std::min<std::uint64_t>(
          cap, std::numeric_limits<std::uint32_t>::max());
      sharded->send(0, world_lp(z), now + lookahead, kGrantKeyBase + z,
                    [this, z, cap] {
                      world->set_capacity(z, static_cast<std::uint32_t>(cap));
                    });
    }
  }

  void seed_initial_capacity() {
    const std::size_t got = fabric->lease_machines(spec.mmog.initial_machines);
    leased = static_cast<std::uint32_t>(got);
    ++result.fabric.capacity_updates;
    const std::uint64_t total =
        static_cast<std::uint64_t>(leased) * spec.mmog.avatars_per_machine;
    const std::size_t zones = zone_config.zones;
    for (std::size_t z = 0; z < zones; ++z) {
      std::uint64_t cap = total / zones + (z < total % zones ? 1 : 0);
      cap = std::min<std::uint64_t>(
          cap, std::numeric_limits<std::uint32_t>::max());
      world->set_capacity(z, static_cast<std::uint32_t>(cap));
    }
  }

  // ------------------------------------------------------------------ run
  EcosystemResult run() {
    validate();
    build_kernel();
    sim::Simulation& core = sharded->lp(0);

    obs::Observability* plane = spec.obs;
    if (plane != nullptr) {
      core.set_observer(plane->kernel_observer());
      if (auto* hook = plane->sampling_hook())
        core.set_sampling_hook(hook, plane->sampling_interval());
      plane->tracer.begin("eco.run", "eco", 0.0);
    }

    if (uses_fabric())
      fabric = std::make_unique<ClusterFabric>(spec.fabric, core,
                                               result.fabric);

    // Construction: serverless, dags, zones — then binding, then
    // preparation in the same fixed order (the order defines event
    // sequence numbers on LP 0 and is part of the determinism contract).
    if (spec.serverless.enabled) {
      faas_config = spec.serverless.config;
      faas_config.obs = plane;
      faas_config.faults = spec.faults;
      const bool bound =
          spec.serverless.backing == ServerlessBacking::kCluster;
      if (bound) fabric->set_instance_cores(spec.serverless.instance_cores);
      faas = std::make_unique<serverless::PlatformDriver>(
          spec.serverless.registry, spec.serverless.invocations, faas_config,
          core, bound ? fabric.get() : nullptr);
      if (bound) fabric->bind_faas(faas.get());
    }

    if (spec.dags.enabled) {
      const bool shared =
          spec.dags.scheduling == DagScheduling::kSharedFabric;
      dag_env = shared
                    ? cluster::make_homogeneous_cluster(
                          "fabric", spec.fabric.machines,
                          spec.fabric.cores_per_machine,
                          spec.fabric.machine_speed)
                    : cluster::make_homogeneous_cluster(
                          "dedicated", spec.dags.machines,
                          spec.dags.cores_per_machine);
      dag_options.obs = plane;
      // On the shared fabric the composition layer owns machine crashes
      // (routed through the fabric so serverless instances die too);
      // dedicated scheduling attaches its own injector like standalone.
      dag_options.faults = shared ? nullptr : spec.faults;
      dag_policy = make_policy(spec.dags, dag_env);
      dags = std::make_unique<sched::SchedDriver>(
          dag_env, spec.dags.workload, *dag_policy, dag_options, core);
      if (shared) fabric->bind_sched(dags.get());
    }

    if (spec.mmog.enabled) {
      zone_config = spec.mmog.config;
      zone_config.horizon = spec.horizon;
      zone_config.shard = sim::ShardOptions{};
      zone_config.obs = nullptr;  // the eco layer owns the plane
      zone_config.faults = spec.faults;
      world = std::make_unique<mmog::ZoneWorld>(zone_config,
                                                spec.mmog.arrivals, *sharded,
                                                zone_lp_base, zone_lp_count);
    }

    // Fabric crash routing attaches first on LP 0: at tied timestamps a
    // machine crash lands before the work it would have hosted.
    if (fabric != nullptr && spec.faults != nullptr) {
      fabric_injector = std::make_unique<fault::Injector>(*spec.faults, plane);
      fabric_injector->on_kind(
          fault::FaultKind::kMachineCrash,
          [this](const fault::FaultEvent& e) {
            fabric->crash(e.target, e.duration);
          });
      core.set_fault_hook(fabric_injector.get());
    }

    if (faas != nullptr) faas->prepare();
    if (dags != nullptr) dags->prepare();

    const bool autoscaled =
        spec.mmog.enabled &&
        spec.mmog.provisioning == ZoneProvisioning::kAutoscaled;
    if (autoscaled) {
      scaler = make_autoscaler(spec.mmog.autoscaler);
      zone_pop.assign(zone_config.zones, 0);
      zone_queue.assign(zone_config.zones, 0);
      seed_initial_capacity();
      const double first_tick =
          spec.mmog.report_interval + 2.0 * lookahead;
      if (first_tick <= spec.horizon)
        core.schedule_at(first_tick, [this] { autoscale_tick(); });
    }

    if (world != nullptr) {
      world->prepare();
      if (autoscaled) {
        for (std::size_t z = 0; z < zone_config.zones; ++z) {
          sharded->lp(world_lp(z)).schedule_at(
              spec.mmog.report_interval, [this, z] { emit_report(z); });
        }
      }
    }

    sharded->run_until(spec.horizon);

    if (faas != nullptr) result.faas = faas->collect();
    if (dags != nullptr) result.dags = dags->collect();
    if (world != nullptr) result.zones = world->collect();
    result.fabric.final_machines_leased = leased + pending;
    result.windows = sharded->windows();
    result.messages = sharded->messages();

    if (plane != nullptr) {
      auto& m = plane->metrics;
      m.counter("eco.faas_leases").add(result.fabric.faas_leases);
      m.counter("eco.faas_denials").add(result.fabric.faas_denials);
      m.counter("eco.machine_leases").add(result.fabric.machine_leases);
      m.counter("eco.machine_returns").add(result.fabric.machine_returns);
      m.counter("eco.crashes").add(result.fabric.crashes);
      m.counter("eco.autoscale_decisions")
          .add(result.fabric.autoscale_decisions);
      m.counter("eco.capacity_updates").add(result.fabric.capacity_updates);
      m.gauge("eco.peak_cores_leased")
          .set(static_cast<double>(result.fabric.peak_cores_leased));
      plane->tracer.end("eco.run", "eco", spec.horizon);
    }
    return std::move(result);
  }
};

}  // namespace

// ------------------------------------------------------------- summary --

std::string EcosystemResult::summary() const {
  std::string out = "eco summary v1\n";
  append_kv(out, "faas.invocations",
            static_cast<std::uint64_t>(faas.invocations.size()));
  append_kv(out, "faas.p50_latency", faas.p50_latency);
  append_kv(out, "faas.p95_latency", faas.p95_latency);
  append_kv(out, "faas.p99_latency", faas.p99_latency);
  append_kv(out, "faas.cold_fraction", faas.cold_fraction);
  append_kv(out, "faas.billed_instance_seconds",
            faas.billed_instance_seconds);
  append_kv(out, "faas.busy_instance_seconds", faas.busy_instance_seconds);
  append_kv(out, "faas.peak_instances",
            static_cast<std::uint64_t>(faas.peak_instances));
  append_kv(out, "faas.failed_invocations",
            static_cast<std::uint64_t>(faas.failed_invocations));
  append_kv(out, "faas.retries", static_cast<std::uint64_t>(faas.retries));
  append_kv(out, "faas.success_rate", faas.success_rate);
  append_kv(out, "faas.capacity_denials",
            static_cast<std::uint64_t>(faas.capacity_denials));
  append_kv(out, "zones.actions", zones.actions);
  append_kv(out, "zones.migrations", zones.migrations);
  append_kv(out, "zones.arrivals", zones.arrivals);
  append_kv(out, "zones.departures", zones.departures);
  append_kv(out, "zones.churned", zones.churned);
  append_kv(out, "zones.residents", zones.residents);
  append_kv(out, "zones.queued_logins", zones.queued_logins);
  append_kv(out, "zones.session_seconds_x1e6", zones.session_seconds_x1e6);
  out += "zones.population";
  for (const std::uint32_t p : zones.final_population) {
    out += ' ';
    out += std::to_string(p);
  }
  out += '\n';
  append_kv(out, "dags.jobs", static_cast<std::uint64_t>(dags.jobs.size()));
  append_kv(out, "dags.makespan", dags.makespan);
  append_kv(out, "dags.mean_wait", dags.mean_wait);
  append_kv(out, "dags.mean_slowdown", dags.mean_slowdown);
  append_kv(out, "dags.p95_slowdown", dags.p95_slowdown);
  append_kv(out, "dags.utilization", dags.utilization);
  append_kv(out, "dags.tasks_completed",
            static_cast<std::uint64_t>(dags.tasks_completed));
  append_kv(out, "dags.tasks_requeued",
            static_cast<std::uint64_t>(dags.tasks_requeued));
  append_kv(out, "fabric.faas_leases", fabric.faas_leases);
  append_kv(out, "fabric.faas_denials", fabric.faas_denials);
  append_kv(out, "fabric.machine_leases", fabric.machine_leases);
  append_kv(out, "fabric.machine_returns", fabric.machine_returns);
  append_kv(out, "fabric.crashes", fabric.crashes);
  append_kv(out, "fabric.autoscale_decisions", fabric.autoscale_decisions);
  append_kv(out, "fabric.capacity_updates", fabric.capacity_updates);
  append_kv(out, "fabric.peak_cores_leased",
            static_cast<std::uint64_t>(fabric.peak_cores_leased));
  append_kv(out, "fabric.final_machines_leased",
            static_cast<std::uint64_t>(fabric.final_machines_leased));
  return out;
}

// ----------------------------------------------------------- ecosystem --

Ecosystem::Ecosystem(EcosystemSpec spec) : spec_(std::move(spec)) {}

EcosystemResult Ecosystem::run() const {
  EcoEngine engine(spec_);
  return engine.run();
}

EcosystemResult run_ecosystem(const EcosystemSpec& spec) {
  EcoEngine engine(spec);
  return engine.run();
}

}  // namespace atlarge::eco
