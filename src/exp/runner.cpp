#include "atlarge/exp/runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "atlarge/obs/observability.hpp"
#include "atlarge/sim/thread_pool.hpp"

namespace atlarge::exp {
namespace {

/// Round-trips a double through the store's JSON number format (%.12g),
/// so in-memory results and results replayed from disk are bitwise
/// identical — the property that makes fresh, memoized, and resumed
/// aggregates byte-identical. Non-finite values (which JSON cannot carry)
/// collapse to 0.
double canonical(double v) {
  if (!std::isfinite(v)) return 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return std::strtod(buf, nullptr);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

TrialRunner::TrialRunner(const SimulatorAdapter& adapter, ResultStore& store,
                         RunnerConfig config)
    : adapter_(&adapter), store_(&store), config_(config) {
  if (config_.threads == 0) config_.threads = 1;
  if (!(config_.scale > 0.0) || config_.scale > 1.0)
    throw std::invalid_argument("TrialRunner: scale must be in (0, 1]");
}

std::vector<std::optional<TrialRecord>> TrialRunner::run(
    const std::vector<TrialTask>& tasks) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_.requested += tasks.size();

  // Classify in task order: memo hits, new work (first occurrence of each
  // missing key), duplicates of pending work, and — beyond the
  // max_executed cap — skips.
  std::vector<std::size_t> job_task;  // task index of each executed job
  std::unordered_map<std::string, std::size_t> pending;  // key -> job slot
  std::size_t memo_hits = 0;
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TrialTask& task = tasks[i];
    if (store_->lookup(task.key)) {
      ++memo_hits;
      continue;
    }
    if (pending.count(task.key)) {
      ++memo_hits;  // shares a job already scheduled in this run
      continue;
    }
    if (config_.max_executed != 0 && job_task.size() >= config_.max_executed) {
      ++skipped;
      continue;
    }
    pending.emplace(task.key, job_task.size());
    job_task.push_back(i);
  }

  // Fan the new work out. Workers write only their private slots; the
  // store and the obs plane are untouched until after the join.
  struct JobResult {
    TrialResult result;
    double start_ms = 0.0;
    double end_ms = 0.0;
  };
  std::vector<JobResult> results(job_task.size());
  if (!job_task.empty()) {
    const auto body = [&](std::size_t j) {
      const TrialTask& task = tasks[job_task[j]];
      JobResult& slot = results[j];
      slot.start_ms = ms_since(t0);
      slot.result = adapter_->run(task.values, task.seed, config_.scale);
      slot.result.objective = canonical(slot.result.objective);
      for (auto& [name, value] : slot.result.metrics)
        value = canonical(value);
      slot.end_ms = ms_since(t0);
    };
    if (config_.threads > 1 && job_task.size() > 1) {
      sim::ThreadPool pool(config_.threads);
      pool.parallel_for(job_task.size(), body);
    } else {
      for (std::size_t j = 0; j < job_task.size(); ++j) body(j);
    }
  }

  // Serial commit in enumeration order: identical store contents (and
  // JSONL bytes, for a fresh store) at every thread count.
  const auto params = adapter_->params();
  for (std::size_t j = 0; j < job_task.size(); ++j) {
    const TrialTask& task = tasks[job_task[j]];
    TrialRecord record;
    record.key = task.key;
    record.objective = results[j].result.objective;
    record.metrics = std::move(results[j].result.metrics);
    // Exact round-trip by construction (Digest::serialize is %.17g +
    // integer buckets), so no canonicalization pass is needed here.
    record.digest = std::move(results[j].result.digest);
    TrialRowContext context;
    context.domain = adapter_->domain();
    context.repeat = task.repeat;
    context.seed = task.seed;
    for (std::size_t p = 0; p < params.size() && p < task.labels.size(); ++p)
      context.params.emplace_back(params[p].name, task.labels[p]);
    store_->append(record, context);
  }

  // Instrumentation, serially, after the join.
  if (config_.obs != nullptr) {
    obs::Observability& plane = *config_.obs;
    plane.metrics.counter("exp.trials_requested").add(tasks.size());
    plane.metrics.counter("exp.trials_executed").add(job_task.size());
    plane.metrics.counter("exp.trials_memoized").add(memo_hits);
    plane.metrics.counter("exp.trials_skipped").add(skipped);
    plane.metrics.gauge("exp.threads")
        .set(static_cast<double>(config_.threads));
    auto& wall = plane.metrics.histogram("exp.trial_wall_ms");
    plane.tracer.begin("exp.run", "exp", 0.0);
    for (const JobResult& job : results) {
      wall.observe(job.end_ms - job.start_ms);
      plane.tracer.begin("exp.trial", "exp", job.start_ms / 1e3);
      plane.tracer.end("exp.trial", "exp", job.end_ms / 1e3);
    }
    plane.tracer.end("exp.run", "exp", ms_since(t0) / 1e3);
  }

  stats_.executed += job_task.size();
  stats_.memoized += memo_hits;
  stats_.skipped += skipped;

  std::vector<std::optional<TrialRecord>> out;
  out.reserve(tasks.size());
  for (const TrialTask& task : tasks) {
    const TrialRecord* record = store_->lookup(task.key);
    if (record) out.emplace_back(*record);
    else out.emplace_back(std::nullopt);  // skipped by the cap
  }
  stats_.wall_ms += ms_since(t0);
  return out;
}

}  // namespace atlarge::exp
