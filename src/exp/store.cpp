#include "atlarge/exp/store.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "atlarge/obs/json.hpp"

namespace atlarge::exp {
namespace {

// ------------------------------------------------------- mini JSON reader --
// Just enough of RFC 8259 to read back the lines this store writes (and
// reject anything mangled by a crash): objects, arrays, strings with the
// escapes JsonWriter emits, numbers, true/false/null. No allocation
// games — store lines are short.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // keeps order

  const JsonValue* find(const char* key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n'))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Store lines only escape control characters; anything else in
          // this range is decoded as a raw byte.
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated — the truncated-tail case
  }

  bool number(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(start, &end);
    if (end == start || errno == ERANGE) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_trial_line(const std::string& line, TrialRecord& out) {
  JsonValue root;
  if (!JsonReader(line).parse(root)) return false;
  if (root.kind != JsonValue::Kind::kObject) return false;
  const JsonValue* key = root.find("key");
  const JsonValue* objective = root.find("objective");
  const JsonValue* metrics = root.find("metrics");
  if (!key || key->kind != JsonValue::Kind::kString || key->string.empty())
    return false;
  if (!objective || objective->kind != JsonValue::Kind::kNumber) return false;
  if (!metrics || metrics->kind != JsonValue::Kind::kObject) return false;
  out.key = key->string;
  out.objective = objective->number;
  out.metrics.clear();
  out.metrics.reserve(metrics->object.size());
  for (const auto& [name, v] : metrics->object) {
    if (v.kind != JsonValue::Kind::kNumber) return false;
    out.metrics.emplace_back(name, v.number);
  }
  // Optional serialized-digest field; absent on lines written before the
  // digest existed (those records just carry an empty distribution).
  out.digest.clear();
  if (const JsonValue* digest = root.find("digest")) {
    if (digest->kind != JsonValue::Kind::kString) return false;
    out.digest = digest->string;
  }
  return true;
}

ResultStore::ResultStore(const std::string& path) : path_(path) {
  if (path_.empty())
    throw std::runtime_error("ResultStore: empty path (use the default "
                             "constructor for a memory-only store)");
  open_and_replay();
}

ResultStore::~ResultStore() {
  if (file_) std::fclose(file_);
}

void ResultStore::open_and_replay() {
  std::vector<std::string> valid_lines;
  bool needs_repair = false;
  if (std::FILE* in = std::fopen(path_.c_str(), "rb")) {
    std::string content;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
      content.append(buf, n);
    const bool read_error = std::ferror(in) != 0;
    std::fclose(in);
    if (read_error)
      throw std::runtime_error("ResultStore: cannot read '" + path_ + "'");

    std::size_t start = 0;
    while (start < content.size()) {
      std::size_t end = content.find('\n', start);
      const bool had_newline = end != std::string::npos;
      if (!had_newline) end = content.size();
      const std::string line = content.substr(start, end - start);
      start = end + (had_newline ? 1 : 0);
      if (line.empty()) continue;
      TrialRecord record;
      if (parse_trial_line(line, record)) {
        if (records_.emplace(record.key, std::move(record)).second)
          valid_lines.push_back(line);
        else
          needs_repair = true;  // duplicate key: keep first, drop the rest
        ++recovered_;
      } else {
        // Crash-truncated or corrupt line: drop it and repair the file so
        // resumed appends produce well-formed JSONL.
        ++discarded_;
        needs_repair = true;
      }
    }
  }
  if (needs_repair) {
    const std::string tmp = path_ + ".repair";
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (!out)
      throw std::runtime_error("ResultStore: cannot repair '" + path_ + "'");
    for (const std::string& line : valid_lines) {
      std::fwrite(line.data(), 1, line.size(), out);
      std::fputc('\n', out);
    }
    const bool ok = std::fflush(out) == 0 && std::ferror(out) == 0;
    std::fclose(out);
    if (!ok || std::rename(tmp.c_str(), path_.c_str()) != 0)
      throw std::runtime_error("ResultStore: cannot repair '" + path_ + "'");
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_)
    throw std::runtime_error("ResultStore: cannot append to '" + path_ + "'");
}

const TrialRecord* ResultStore::lookup(const std::string& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

std::string ResultStore::render_line(const TrialRecord& record,
                                     const TrialRowContext& context) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("key").value(record.key);
  w.key("domain").value(context.domain);
  w.key("repeat").value(static_cast<std::uint64_t>(context.repeat));
  w.key("seed").value(static_cast<std::uint64_t>(context.seed));
  w.key("params").begin_object();
  for (const auto& [name, label] : context.params) w.key(name).value(label);
  w.end_object();
  w.key("objective").value(record.objective);
  w.key("metrics").begin_object();
  for (const auto& [name, value] : record.metrics) w.key(name).value(value);
  w.end_object();
  if (!record.digest.empty()) w.key("digest").value(record.digest);
  w.end_object();
  return w.str();
}

void ResultStore::append(const TrialRecord& record,
                         const TrialRowContext& context) {
  if (record.key.empty())
    throw std::invalid_argument("ResultStore::append: empty key");
  if (!records_.emplace(record.key, record).second) return;  // idempotent
  if (!file_) return;
  const std::string line = render_line(record, context);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // One flush per trial: a killed campaign loses at most the in-flight
  // line, which open_and_replay() repairs away on resume.
  std::fflush(file_);
}

}  // namespace atlarge::exp
