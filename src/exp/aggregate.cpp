#include "atlarge/exp/aggregate.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <span>
#include <sstream>

#include "atlarge/obs/json.hpp"

namespace atlarge::exp {
namespace {

/// Deterministic per-point RNG stream for the bootstrap: campaign seed
/// mixed with the point's label signature, never with execution order.
stats::Rng point_rng(const CampaignSpec& spec,
                     const std::vector<std::string>& labels) {
  std::string signature = "pt";
  for (const auto& label : labels) {
    signature += '|';
    signature += label;
  }
  return stats::Rng(spec.seed ^ fnv1a64(signature));
}

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

CampaignAggregate aggregate_campaign(
    const CampaignSpec& spec, const SimulatorAdapter& adapter,
    const BoundSpace& space, const std::vector<TrialTask>& tasks,
    const std::vector<std::optional<TrialRecord>>& records) {
  CampaignAggregate aggregate;
  aggregate.campaign = spec.name;
  aggregate.domain = adapter.domain();
  aggregate.objective = adapter.objective();
  aggregate.mode = to_string(spec.mode);
  for (const auto& dim : space.dims()) aggregate.param_names.push_back(dim.name);

  struct Group {
    design::DesignPoint point;
    std::vector<double> objectives;  // one per unique record
    std::vector<const TrialRecord*> unique_records;
    std::set<std::string> keys;
  };
  std::map<design::DesignPoint, std::size_t> index;  // point -> group slot
  std::vector<Group> groups;
  for (std::size_t i = 0; i < tasks.size() && i < records.size(); ++i) {
    if (!records[i].has_value()) {
      aggregate.complete = false;
      continue;
    }
    const TrialTask& task = tasks[i];
    const auto [it, inserted] = index.emplace(task.point, groups.size());
    if (inserted) {
      groups.push_back(Group{});
      groups.back().point = task.point;
    }
    Group& group = groups[it->second];
    const TrialRecord& record = *records[i];
    if (!group.keys.insert(record.key).second) continue;  // revisited point
    group.objectives.push_back(record.objective);
    group.unique_records.push_back(&*records[i]);
  }

  aggregate.points = groups.size();
  for (const Group& group : groups) aggregate.trials += group.objectives.size();

  aggregate.ranked.reserve(groups.size());
  for (const Group& group : groups) {
    PointAggregate point;
    point.point = group.point;
    point.values = space.values(group.point);
    point.labels = space.labels(group.point);
    point.repeats = group.objectives.size();

    double sum = 0.0;
    for (const double o : group.objectives) sum += o;
    point.mean_objective =
        group.objectives.empty()
            ? 0.0
            : sum / static_cast<double>(group.objectives.size());
    if (group.objectives.size() >= 2) {
      stats::Rng rng = point_rng(spec, point.labels);
      point.objective_ci = stats::bootstrap_mean_ci(
          std::span<const double>(group.objectives), rng);
    } else {
      point.objective_ci = {point.mean_objective, point.mean_objective,
                            point.mean_objective};
    }

    // Merge every repeat's distribution digest; records predating the
    // digest field (or adapters without one) contribute nothing.
    for (const TrialRecord* record : group.unique_records) {
      obs::Digest d;
      if (obs::Digest::deserialize(record->digest, d)) point.digest.merge(d);
    }

    // Metric means, in the adapter's declared (first record's) order.
    if (!group.unique_records.empty()) {
      const auto& first = group.unique_records.front()->metrics;
      point.mean_metrics.reserve(first.size());
      for (std::size_t m = 0; m < first.size(); ++m) {
        double metric_sum = 0.0;
        std::size_t n = 0;
        for (const TrialRecord* record : group.unique_records) {
          if (m < record->metrics.size()) {
            metric_sum += record->metrics[m].second;
            ++n;
          }
        }
        point.mean_metrics.emplace_back(
            first[m].first, n == 0 ? 0.0 : metric_sum / static_cast<double>(n));
      }
    }
    aggregate.ranked.push_back(std::move(point));
  }

  std::stable_sort(aggregate.ranked.begin(), aggregate.ranked.end(),
                   [](const PointAggregate& a, const PointAggregate& b) {
                     if (a.mean_objective != b.mean_objective)
                       return a.mean_objective < b.mean_objective;
                     return a.point < b.point;  // total, content-based order
                   });

  // Per-dimension marginals: mean objective over every trial choosing a
  // given option, weighted by repeats.
  const auto& dims = space.dims();
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const ParamSpec& param = space.params()[dims[d].param_index];
    for (std::size_t o = 0; o < dims[d].option_indices.size(); ++o) {
      MarginalCell cell;
      cell.dim = dims[d].name;
      cell.option = param.option_label(dims[d].option_indices[o]);
      double sum = 0.0;
      for (const Group& group : groups) {
        if (group.point[d] != o) continue;
        for (const double obj : group.objectives) sum += obj;
        cell.trials += group.objectives.size();
      }
      cell.mean_objective =
          cell.trials == 0 ? 0.0 : sum / static_cast<double>(cell.trials);
      aggregate.marginals.push_back(std::move(cell));
    }
  }
  return aggregate;
}

std::string aggregate_json(const CampaignAggregate& aggregate) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("campaign").value(aggregate.campaign);
  w.key("domain").value(aggregate.domain);
  w.key("objective").value(aggregate.objective);
  w.key("mode").value(aggregate.mode);
  w.key("complete").value(aggregate.complete);
  w.key("points").value(static_cast<std::uint64_t>(aggregate.points));
  w.key("trials").value(static_cast<std::uint64_t>(aggregate.trials));
  w.key("ranked").begin_array();
  for (std::size_t r = 0; r < aggregate.ranked.size(); ++r) {
    const PointAggregate& point = aggregate.ranked[r];
    w.begin_object();
    w.key("rank").value(static_cast<std::uint64_t>(r + 1));
    w.key("params").begin_object();
    for (std::size_t p = 0; p < point.labels.size(); ++p) {
      std::string key;
      if (p < aggregate.param_names.size()) {
        key = aggregate.param_names[p];
      } else {
        key = "p";
        key += std::to_string(p);
      }
      w.key(key);
      w.value(point.labels[p]);
    }
    w.end_object();
    w.key("repeats").value(static_cast<std::uint64_t>(point.repeats));
    w.key("mean_objective").value(point.mean_objective);
    w.key("ci_lo").value(point.objective_ci.lo);
    w.key("ci_hi").value(point.objective_ci.hi);
    w.key("metrics").begin_object();
    for (const auto& [name, value] : point.mean_metrics)
      w.key(name).value(value);
    w.end_object();
    // Quantiles of the *merged* distribution over all repeats (all-zero
    // when the adapter records no digest).
    w.key("digest").begin_object();
    w.key("count").value(point.digest.count());
    w.key("p50").value(point.digest.p50());
    w.key("p95").value(point.digest.p95());
    w.key("p99").value(point.digest.p99());
    w.key("p999").value(point.digest.p999());
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("marginals").begin_array();
  for (const MarginalCell& cell : aggregate.marginals) {
    w.begin_object();
    w.key("dim").value(cell.dim);
    w.key("option").value(cell.option);
    w.key("mean_objective").value(cell.mean_objective);
    w.key("trials").value(static_cast<std::uint64_t>(cell.trials));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string aggregate_table(const CampaignAggregate& aggregate,
                            std::size_t top_k) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-4s  %-12s  %-24s  %s\n", "rank",
                aggregate.objective.substr(0, 12).c_str(), "ci95",
                "configuration");
  out << line;
  const std::size_t shown = std::min(top_k, aggregate.ranked.size());
  for (std::size_t r = 0; r < shown; ++r) {
    const PointAggregate& point = aggregate.ranked[r];
    std::string config;
    for (std::size_t p = 0; p < point.labels.size(); ++p) {
      if (!config.empty()) config += " ";
      if (p < aggregate.param_names.size())
        config += aggregate.param_names[p] + "=";
      config += point.labels[p];
    }
    std::string ci = "[";
    ci += format_number(point.objective_ci.lo);
    ci += ", ";
    ci += format_number(point.objective_ci.hi);
    ci += "]";
    std::snprintf(line, sizeof(line), "%-4zu  %-12s  %-24s  %s\n", r + 1,
                  format_number(point.mean_objective).c_str(), ci.c_str(),
                  config.c_str());
    out << line;
  }
  out << "marginals (mean " << aggregate.objective << " per option):\n";
  std::string current_dim;
  for (const MarginalCell& cell : aggregate.marginals) {
    if (cell.trials == 0) continue;  // option never visited (incomplete
                                     // campaign or random/explore mode)
    if (cell.dim != current_dim) {
      if (!current_dim.empty()) out << "\n";
      out << "  " << cell.dim << ":";
      current_dim = cell.dim;
    }
    out << "  " << cell.option << "=" << format_number(cell.mean_objective);
  }
  out << "\n";
  return out.str();
}

}  // namespace atlarge::exp
