#include "atlarge/exp/engine.hpp"

#include <algorithm>

namespace atlarge::exp {
namespace {

/// Thrown out of the explore-mode quality callback when the max_executed
/// cap interrupts the campaign mid-search.
struct CampaignInterrupted {};

}  // namespace

CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const SimulatorAdapter& adapter,
                             ResultStore& store, RunnerConfig config) {
  config.scale = spec.scale;
  if (config.threads == 0) config.threads = spec.threads;
  const BoundSpace space(adapter, spec);
  TrialRunner runner(adapter, store, config);

  CampaignOutcome outcome;
  if (spec.mode != CampaignMode::kExplore) {
    outcome.tasks = enumerate_trials(spec, space);
    outcome.records = runner.run(outcome.tasks);
  } else {
    // Budgeted adaptive search: design::explore_free walks the bound
    // space; each point evaluation runs `repeats` (memoized) trials and
    // maximizes a monotone transform of the mean objective. All domain
    // objectives are nonnegative costs, so 1/(1+mean) maps "minimize
    // objective" onto the explorer's "maximize quality in (0, 1]".
    design::Landscape landscape;
    landscape.options = space.option_counts();
    landscape.quality = [&](const design::DesignPoint& point) -> double {
      std::vector<TrialTask> batch;
      batch.reserve(spec.repeats);
      for (std::uint32_t r = 0; r < spec.repeats; ++r)
        batch.push_back(make_trial(spec, space, point, r,
                                   outcome.tasks.size() + batch.size()));
      auto records = runner.run(batch);
      double sum = 0.0;
      for (const auto& record : records) {
        if (!record.has_value()) throw CampaignInterrupted{};
        sum += record->objective;
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        outcome.tasks.push_back(std::move(batch[i]));
        outcome.records.push_back(std::move(records[i]));
      }
      const double mean = sum / static_cast<double>(spec.repeats);
      return 1.0 / (1.0 + std::max(0.0, mean));
    };
    design::ExplorationConfig explore;
    explore.evaluation_budget = spec.trials;
    explore.seed = spec.seed;
    // Restart a few times even under small budgets (the library default
    // of 200 evals/restart assumes cheap NK evaluations).
    explore.restart_period =
        std::max<std::size_t>(4, (spec.trials + 3) / 4);
    try {
      outcome.trace = design::explore_free(landscape, explore);
    } catch (const CampaignInterrupted&) {
      outcome.complete = false;
    }
  }

  outcome.stats = runner.stats();
  for (const auto& record : outcome.records)
    if (!record.has_value()) outcome.complete = false;
  outcome.aggregate =
      aggregate_campaign(spec, adapter, space, outcome.tasks, outcome.records);
  outcome.aggregate.complete = outcome.complete;
  return outcome;
}

}  // namespace atlarge::exp
