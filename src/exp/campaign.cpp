#include "atlarge/exp/campaign.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace atlarge::exp {
namespace {

constexpr char kDescriptorVersion[] = "exp1";
/// Grid campaigns beyond this are almost certainly a spec mistake (and
/// would swamp the memo store); random/explore modes are the tool for
/// big spaces.
constexpr std::size_t kMaxGridPoints = 100'000;

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[noreturn]] void spec_error(std::size_t line, const std::string& what) {
  throw std::invalid_argument("campaign spec line " + std::to_string(line) +
                              ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line,
                        const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0')
    spec_error(line, std::string("bad ") + what + " '" + tok + "'");
  return static_cast<std::uint64_t>(v);
}

double parse_positive_double(const std::string& tok, std::size_t line,
                             const char* what) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || !(v > 0.0))
    spec_error(line, std::string("bad ") + what + " '" + tok + "'");
  return v;
}

}  // namespace

std::string ParamSpec::option_label(std::size_t i) const {
  if (categorical()) return labels.at(i);
  return format_double(values.at(i));
}

std::string to_string(CampaignMode mode) {
  switch (mode) {
    case CampaignMode::kGrid: return "grid";
    case CampaignMode::kRandom: return "random";
    case CampaignMode::kExplore: return "explore";
  }
  return "?";
}

CampaignSpec parse_campaign_spec(const std::string& text) {
  CampaignSpec spec;
  bool saw_domain = false;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    const auto require_one = [&]() -> const std::string& {
      if (tokens.size() != 2)
        spec_error(lineno, "'" + keyword + "' takes exactly one value");
      return tokens[1];
    };
    if (keyword == "campaign") {
      spec.name = require_one();
    } else if (keyword == "domain") {
      spec.domain = require_one();
      saw_domain = true;
    } else if (keyword == "mode") {
      const std::string& m = require_one();
      if (m == "grid") spec.mode = CampaignMode::kGrid;
      else if (m == "random") spec.mode = CampaignMode::kRandom;
      else if (m == "explore") spec.mode = CampaignMode::kExplore;
      else spec_error(lineno, "unknown mode '" + m + "'");
    } else if (keyword == "repeats") {
      spec.repeats = parse_u64(require_one(), lineno, "repeats");
      if (spec.repeats == 0) spec_error(lineno, "repeats must be >= 1");
    } else if (keyword == "seed") {
      spec.seed = parse_u64(require_one(), lineno, "seed");
    } else if (keyword == "scale") {
      spec.scale = parse_positive_double(require_one(), lineno, "scale");
      if (spec.scale > 1.0) spec_error(lineno, "scale must be in (0, 1]");
    } else if (keyword == "trials") {
      spec.trials = parse_u64(require_one(), lineno, "trials");
      if (spec.trials == 0) spec_error(lineno, "trials must be >= 1");
    } else if (keyword == "threads") {
      spec.threads = parse_u64(require_one(), lineno, "threads");
      if (spec.threads == 0) spec_error(lineno, "threads must be >= 1");
    } else if (keyword == "top") {
      spec.top_k = parse_u64(require_one(), lineno, "top");
      if (spec.top_k == 0) spec_error(lineno, "top must be >= 1");
    } else if (keyword == "dim") {
      if (tokens.size() < 3)
        spec_error(lineno, "dim needs a name and at least one option");
      const std::string& name = tokens[1];
      if (spec.dims.count(name))
        spec_error(lineno, "dim '" + name + "' listed twice");
      spec.dims[name] = std::vector<std::string>(tokens.begin() + 2,
                                                 tokens.end());
    } else {
      spec_error(lineno, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_domain)
    throw std::invalid_argument("campaign spec: missing 'domain' line");
  if (spec.name.empty()) spec.name = spec.domain + "-campaign";
  return spec;
}

CampaignSpec load_campaign_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("cannot read campaign spec '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_campaign_spec(buf.str());
}

BoundSpace::BoundSpace(const SimulatorAdapter& adapter,
                       const CampaignSpec& spec)
    : params_(adapter.params()) {
  if (params_.empty())
    throw std::invalid_argument("adapter '" + adapter.domain() +
                                "' exposes no parameters");
  auto pending = spec.dims;
  dims_.reserve(params_.size());
  for (std::size_t p = 0; p < params_.size(); ++p) {
    const ParamSpec& param = params_[p];
    if (param.values.empty() ||
        (param.categorical() && param.labels.size() != param.values.size()))
      throw std::invalid_argument("adapter parameter '" + param.name +
                                  "' has a malformed option list");
    BoundDimension dim;
    dim.name = param.name;
    dim.param_index = p;
    const auto it = pending.find(param.name);
    if (it == pending.end()) {
      for (std::uint32_t i = 0; i < param.values.size(); ++i)
        dim.option_indices.push_back(i);
    } else {
      for (const std::string& tok : it->second) {
        std::size_t found = param.values.size();
        if (param.categorical()) {
          for (std::size_t i = 0; i < param.labels.size(); ++i)
            if (param.labels[i] == tok) { found = i; break; }
        } else {
          char* end = nullptr;
          const double v = std::strtod(tok.c_str(), &end);
          if (end != tok.c_str() && *end == '\0')
            for (std::size_t i = 0; i < param.values.size(); ++i)
              if (param.values[i] == v) { found = i; break; }
        }
        if (found == param.values.size()) {
          std::string options;
          for (std::size_t i = 0; i < param.values.size(); ++i) {
            if (!options.empty()) options += ", ";
            options += param.option_label(i);
          }
          throw std::invalid_argument("dim '" + param.name + "': option '" +
                                      tok + "' not offered by the adapter (" +
                                      options + ")");
        }
        const auto idx = static_cast<std::uint32_t>(found);
        for (const std::uint32_t existing : dim.option_indices)
          if (existing == idx)
            throw std::invalid_argument("dim '" + param.name +
                                        "': duplicate option '" + tok + "'");
        dim.option_indices.push_back(idx);
      }
      pending.erase(it);
    }
    dims_.push_back(std::move(dim));
  }
  if (!pending.empty())
    throw std::invalid_argument("dim '" + pending.begin()->first +
                                "' is not a parameter of domain '" +
                                adapter.domain() + "'");
}

std::size_t BoundSpace::grid_size() const noexcept {
  std::size_t n = 1;
  for (const auto& dim : dims_) n *= dim.option_indices.size();
  return n;
}

std::vector<std::uint32_t> BoundSpace::option_counts() const {
  std::vector<std::uint32_t> counts;
  counts.reserve(dims_.size());
  for (const auto& dim : dims_)
    counts.push_back(static_cast<std::uint32_t>(dim.option_indices.size()));
  return counts;
}

std::vector<double> BoundSpace::values(const design::DesignPoint& point)
    const {
  if (point.size() != dims_.size())
    throw std::invalid_argument("BoundSpace::values: arity mismatch");
  std::vector<double> out(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const BoundDimension& dim = dims_[d];
    out[d] = params_[dim.param_index]
                 .values[dim.option_indices.at(point[d])];
  }
  return out;
}

std::vector<std::string> BoundSpace::labels(const design::DesignPoint& point)
    const {
  if (point.size() != dims_.size())
    throw std::invalid_argument("BoundSpace::labels: arity mismatch");
  std::vector<std::string> out(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const BoundDimension& dim = dims_[d];
    out[d] = params_[dim.param_index].option_label(
        dim.option_indices.at(point[d]));
  }
  return out;
}

design::DesignPoint BoundSpace::grid_point(std::size_t index) const {
  design::DesignPoint point(dims_.size(), 0);
  // Mixed radix, last dimension fastest.
  for (std::size_t d = dims_.size(); d-- > 0;) {
    const std::size_t radix = dims_[d].option_indices.size();
    point[d] = static_cast<std::uint32_t>(index % radix);
    index /= radix;
  }
  return point;
}

design::DesignPoint BoundSpace::random_point(stats::Rng& rng) const {
  design::DesignPoint point(dims_.size(), 0);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    point[d] = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(dims_[d].option_indices.size()) - 1));
  }
  return point;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string trial_descriptor(const CampaignSpec& spec, const BoundSpace& space,
                             const std::vector<double>& values,
                             std::uint32_t repeat) {
  std::string d = kDescriptorVersion;
  d += '|';
  d += spec.domain;
  d += "|s";
  d += std::to_string(spec.seed);
  d += "|sc";
  d += format_double(spec.scale);
  const auto& params = space.params();
  for (std::size_t p = 0; p < params.size(); ++p) {
    d += '|';
    d += params[p].name;
    d += '=';
    d += format_double(values.at(p));
  }
  d += "|r";
  d += std::to_string(repeat);
  return d;
}

TrialTask make_trial(const CampaignSpec& spec, const BoundSpace& space,
                     const design::DesignPoint& point, std::uint32_t repeat,
                     std::size_t index) {
  TrialTask task;
  task.index = index;
  task.point = point;
  task.values = space.values(point);
  task.labels = space.labels(point);
  task.repeat = repeat;
  const std::string descriptor =
      trial_descriptor(spec, space, task.values, repeat);
  const std::uint64_t h = fnv1a64(descriptor);
  task.seed = splitmix64(h);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  task.key = buf;
  return task;
}

std::vector<TrialTask> enumerate_trials(const CampaignSpec& spec,
                                        const BoundSpace& space) {
  if (spec.mode == CampaignMode::kExplore)
    throw std::logic_error(
        "enumerate_trials: explore mode schedules adaptively; use "
        "run_campaign");
  std::vector<TrialTask> tasks;
  const auto add_point = [&](const design::DesignPoint& point) {
    for (std::uint32_t r = 0; r < spec.repeats; ++r)
      tasks.push_back(make_trial(spec, space, point, r, tasks.size()));
  };
  if (spec.mode == CampaignMode::kGrid) {
    const std::size_t n = space.grid_size();
    if (n > kMaxGridPoints)
      throw std::invalid_argument(
          "grid campaign has " + std::to_string(n) +
          " points (max " + std::to_string(kMaxGridPoints) +
          "); restrict dims or use random/explore mode");
    tasks.reserve(n * spec.repeats);
    for (std::size_t i = 0; i < n; ++i) add_point(space.grid_point(i));
  } else {
    stats::Rng rng(splitmix64(spec.seed ^ 0xa77a96e5u));
    tasks.reserve(spec.trials * spec.repeats);
    for (std::size_t i = 0; i < spec.trials; ++i)
      add_point(space.random_point(rng));
  }
  return tasks;
}

}  // namespace atlarge::exp
