#include "atlarge/exp/adapters.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/eco/ecosystem.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/graph.hpp"
#include "atlarge/graph/pad.hpp"
#include "atlarge/p2p/swarm.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/portfolio.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/trace/catalog.hpp"
#include "atlarge/trace/event.hpp"
#include "atlarge/workflow/generators.hpp"

namespace atlarge::exp {
namespace {

/// scale * nominal, floored so a heavily scaled-down smoke campaign still
/// simulates something.
std::size_t scaled(std::size_t nominal, double scale, std::size_t floor_at) {
  const auto v = static_cast<std::size_t>(
      std::llround(static_cast<double>(nominal) * scale));
  return std::max(v, floor_at);
}

/// The shared faults.* dimension: events per 1000 simulated seconds. 0
/// (the first option, and the one every committed non-chaos spec pins)
/// runs with no plan at all, so those trials stay byte-identical to a
/// fault-unaware adapter.
ParamSpec fault_rate_param() { return {"faults.rate", {0.0, 8.0, 40.0}, {}}; }

/// Seed for the per-trial fault plan: FNV-1a over every parameter EXCEPT
/// faults.rate itself (and excluding the trial seed, which varies with the
/// rate through the trial descriptor). Plans at different rates therefore
/// share a seed when the rest of the design point matches — and since
/// FaultPlan::generate derives each event purely from (seed, index), the
/// lower-rate plan is a subset of the higher-rate one, which is what makes
/// "sweep faults.rate" campaigns monotone-comparable.
std::uint64_t fault_plan_seed(const std::vector<double>& v,
                              std::size_t rate_index) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i == rate_index) continue;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v[i], sizeof bits);
    h = (h ^ bits) * 1099511628211ULL;
  }
  return h;
}

/// The shared workload.scenario dimension. Option 0 ("synthetic") keeps the
/// adapter's built-in generator byte-identical to a trace-unaware adapter —
/// it is the option every committed non-scenario spec pins. Option 1 replays
/// the named trace::catalog scenario through the engine's trace-driven
/// arrival seam. Appended AFTER faults.rate so existing v[] indices — and
/// the rate_index baked into fault_plan_seed call sites — are unchanged.
ParamSpec scenario_param(const char* scenario) {
  return {"workload.scenario", {0.0, 1.0}, {"synthetic", scenario}};
}

const trace::catalog::Scenario& named_scenario(const char* name) {
  const auto* s = trace::catalog::find(name);
  if (s == nullptr)
    throw std::logic_error(std::string("adapters: unknown catalog scenario ") +
                           name);
  return *s;
}

/// slo_pass / slo_alerts metric pair from a per-trial monitor. Trials are
/// graded like production services: the SLO passes when no multi-window
/// burn-rate alert fired anywhere in the run.
void append_slo_metrics(TrialResult& out, const obs::SloMonitor& slo) {
  out.metrics.emplace_back("slo_alerts",
                           static_cast<double>(slo.alerts().size()));
  out.metrics.emplace_back("slo_pass", slo.alerts().empty() ? 1.0 : 0.0);
}

// ------------------------------------------------------------- portfolio --

class PortfolioAdapter final : public SimulatorAdapter {
 public:
  std::string domain() const override { return "portfolio"; }
  std::string objective() const override { return "mean_slowdown"; }

  std::vector<ParamSpec> params() const override {
    return {
        {"selection_interval", {250.0, 500.0, 1000.0}, {}},
        {"active_set", {0.0, 2.0, 4.0}, {}},  // 0 = simulate all policies
        {"cost_per_task_policy", {0.0, 1e-4, 1e-3}, {}},
        {"workload", {0.0, 1.0, 2.0}, {"Syn", "Sci", "BD"}},
        fault_rate_param(),
        scenario_param("ecommerce-spike"),
    };
  }

  TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                  double scale) const override {
    static const workflow::WorkloadClass kClasses[] = {
        workflow::WorkloadClass::kSynthetic,
        workflow::WorkloadClass::kScientific,
        workflow::WorkloadClass::kBigData,
    };
    const bool from_trace = v[5] > 0.5;
    workflow::WorkloadSpec wspec;
    wspec.cls = kClasses[static_cast<std::size_t>(v[3])];
    wspec.jobs = scaled(48, scale, 8);
    wspec.horizon = 4'000.0 * scale + 500.0;
    wspec.seed = seed;
    workflow::Workload workload;
    if (from_trace) {
      // workload.scenario overrides the synthetic workload dimension: jobs
      // come from the e-commerce spike trace (session starts -> one-task
      // jobs), capped at the same job budget as the generator.
      const auto& scenario = named_scenario("ecommerce-spike");
      auto events = trace::catalog::events(scenario, seed,
                                           scaled(40'000, scale, 4'000));
      trace::VectorEventStream stream(std::move(events));
      workload = trace::catalog::to_workload(stream, wspec.jobs);
      wspec.horizon = scenario.horizon();  // fault-plan window
    } else {
      workload = workflow::generate(wspec);
    }
    const auto env = cluster::make_homogeneous_cluster("campaign", 16, 8);

    sched::PortfolioConfig config;
    config.selection_interval = v[0];
    config.active_set = static_cast<std::size_t>(v[1]);
    config.cost_per_task_policy = v[2];
    config.seed = seed ^ 0x90f0110ULL;
    config.eval_threads = 1;  // trial-level parallelism only
    sched::PortfolioScheduler portfolio(sched::standard_policies(), env,
                                        config);
    // Per-trial telemetry plane (local, so the thread-safety contract
    // holds): a queue-saturation SLO graded over the whole run. The
    // tracer ring is disabled — campaigns only need the SLO verdict.
    obs::Observability plane(0);
    obs::SloMonitor slo;
    obs::SloSpec sspec;
    sspec.name = "sched-queue";
    sspec.kind = obs::SloKind::kGaugeAbove;
    sspec.objective = 0.9;  // queue may exceed the bound 10% of the time
    sspec.threshold = 64.0;
    sspec.gauge = &plane.metrics.gauge("sched.eligible_queue");
    sspec.fast = {120.0, 5.0};
    sspec.slow = {1200.0, 2.0};
    slo.add(sspec);
    plane.attach_slo(&slo);
    plane.set_sampling_interval(10.0);

    sched::SimOptions options;
    options.obs = &plane;
    fault::FaultPlan plan;
    if (v[4] > 0.0) {
      fault::FaultSpec fspec;
      fspec.rate = v[4];
      fspec.horizon = wspec.horizon;
      fspec.seed = fault_plan_seed(v, 4);
      fspec.targets = 16;  // machine count of the campaign cluster
      fspec.mean_duration = 120.0;
      fspec.kinds = {fault::FaultKind::kMachineCrash,
                     fault::FaultKind::kSlowdown};
      plan = fault::FaultPlan::generate(fspec);
      options.faults = &plan;
    }
    const auto result = sched::simulate(env, workload, portfolio, options);

    TrialResult out;
    out.objective = result.mean_slowdown;
    out.metrics = {
        {"mean_slowdown", result.mean_slowdown},
        {"median_slowdown", result.median_slowdown},
        {"p95_slowdown", result.p95_slowdown},
        {"p999_slowdown", result.p999_slowdown},
        {"mean_wait", result.mean_wait},
        {"makespan", result.makespan},
        {"utilization", result.utilization},
        {"decision_overhead", result.decision_overhead},
        {"tasks_completed", static_cast<double>(result.tasks_completed)},
        {"faults_injected", static_cast<double>(result.faults_injected)},
        {"tasks_requeued", static_cast<double>(result.tasks_requeued)},
    };
    append_slo_metrics(out, slo);
    out.digest = result.slowdown_digest.serialize();
    return out;
  }
};

// ------------------------------------------------------------ serverless --

class ServerlessAdapter final : public SimulatorAdapter {
 public:
  std::string domain() const override { return "serverless"; }
  std::string objective() const override { return "p95_latency"; }

  std::vector<ParamSpec> params() const override {
    return {
        {"keep_alive", {0.0, 60.0, 300.0, 600.0}, {}},
        {"prewarmed", {0.0, 2.0, 8.0}, {}},
        {"max_instances", {32.0, 128.0, 512.0}, {}},
        fault_rate_param(),
        scenario_param("feed-fanout"),
    };
  }

  TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                  double scale) const override {
    const std::vector<serverless::FunctionSpec> registry = {
        {"api", 0.08, 0.9, 128.0},
        {"etl", 0.5, 1.8, 512.0},
        {"ml", 1.2, 2.5, 1024.0},
    };
    const bool from_trace = v[4] > 0.5;
    const double horizon =
        from_trace ? named_scenario("feed-fanout").horizon()
                   : std::max(120.0, 1'500.0 * scale);

    // Per-trial telemetry plane: an availability SLO over the request
    // error ratio, evaluated continuously while the platform runs. With
    // faults.rate > 0 the loss/cold-start-failure windows this plan
    // injects are exactly what the burn-rate monitor is built to detect.
    obs::Observability plane(0);
    obs::SloMonitor slo;
    obs::SloSpec sspec;
    sspec.name = "faas-availability";
    sspec.kind = obs::SloKind::kErrorRatio;
    sspec.objective = 0.95;  // 5% error budget
    sspec.bad = &plane.metrics.counter("faas.failed");
    sspec.total = &plane.metrics.counter("faas.requests");
    sspec.fast = {60.0, 4.0};   // >= 20% of the last minute's requests bad
    sspec.slow = {600.0, 1.0};  // >= 5% over ten minutes
    slo.add(sspec);
    plane.attach_slo(&slo);
    plane.set_sampling_interval(5.0);

    serverless::PlatformConfig config;
    config.obs = &plane;
    config.keep_alive = v[0];
    config.prewarmed = static_cast<std::uint32_t>(v[1]);
    config.max_instances = static_cast<std::uint32_t>(v[2]);
    fault::FaultPlan plan;
    if (v[3] > 0.0) {
      fault::FaultSpec fspec;
      fspec.rate = v[3];
      fspec.horizon = horizon;
      fspec.seed = fault_plan_seed(v, 3);
      fspec.targets = static_cast<std::uint32_t>(registry.size());
      fspec.mean_duration = 30.0;
      fspec.kinds = {fault::FaultKind::kMessageLoss,
                     fault::FaultKind::kMessageDelay,
                     fault::FaultKind::kColdStartFailure};
      plan = fault::FaultPlan::generate(fspec);
      config.faults = &plan;
      config.retry.max_attempts = 2;
      config.retry.timeout = 10.0;
    }
    serverless::PlatformResult result;
    if (from_trace) {
      // Trace-driven arrivals: the feed-fanout flashcrowd scenario, capped
      // so a trial stays campaign-priced, streamed through the platform's
      // pull-based invocation seam. Requests route to functions by region.
      auto events = trace::catalog::events(
          named_scenario("feed-fanout"), seed, scaled(30'000, scale, 3'000));
      trace::VectorEventStream stream(std::move(events));
      trace::catalog::RequestInvocationSource source(stream, registry.size());
      result = serverless::run_platform(registry, source, config);
    } else {
      stats::Rng rng(seed);
      const auto invocations = serverless::bursty_invocations(
          registry.size(), 1.5, horizon, 180.0, scaled(48, scale, 6), rng);
      result = serverless::run_platform(registry, invocations, config);
    }

    TrialResult out;
    out.objective = result.p95_latency;
    out.metrics = {
        {"p50_latency", result.p50_latency},
        {"p95_latency", result.p95_latency},
        {"p99_latency", result.p99_latency},
        {"cold_fraction", result.cold_fraction},
        {"billed_instance_seconds", result.billed_instance_seconds},
        {"busy_instance_seconds", result.busy_instance_seconds},
        {"peak_instances", static_cast<double>(result.peak_instances)},
        {"invocations", static_cast<double>(result.invocations.size())},
        {"success_rate", result.success_rate},
        {"failed", static_cast<double>(result.failed_invocations)},
        {"retries", static_cast<double>(result.retries)},
        {"faults_injected", static_cast<double>(result.faults_injected)},
        {"p999_latency", result.p999_latency},
    };
    append_slo_metrics(out, slo);
    out.digest = result.latency_digest.serialize();
    return out;
  }
};

// ------------------------------------------------------------- autoscale --

class AutoscaleAdapter final : public SimulatorAdapter {
 public:
  AutoscaleAdapter() {
    for (const auto& scaler : autoscale::standard_autoscalers())
      names_.push_back(scaler->name());
  }

  std::string domain() const override { return "autoscale"; }
  std::string objective() const override { return "mean_slowdown"; }

  std::vector<ParamSpec> params() const override {
    ParamSpec autoscaler{"autoscaler", {}, names_};
    for (std::size_t i = 0; i < names_.size(); ++i)
      autoscaler.values.push_back(static_cast<double>(i));
    return {
        std::move(autoscaler),
        {"cores_per_machine", {2.0, 4.0, 8.0}, {}},
        {"provisioning_delay", {30.0, 60.0, 120.0}, {}},
        {"interval", {30.0, 60.0}, {}},
        fault_rate_param(),
        scenario_param("gaming-diurnal"),
    };
  }

  TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                  double scale) const override {
    const bool from_trace = v[5] > 0.5;
    workflow::WorkloadSpec wspec;
    wspec.cls = workflow::WorkloadClass::kIndustrial;
    wspec.jobs = scaled(28, scale, 6);
    wspec.horizon = 6'000.0 * scale + 600.0;
    wspec.seed = seed;
    workflow::Workload workload;
    if (from_trace) {
      const auto& scenario = named_scenario("gaming-diurnal");
      auto events = trace::catalog::events(scenario, seed,
                                           scaled(40'000, scale, 4'000));
      trace::VectorEventStream stream(std::move(events));
      workload = trace::catalog::to_workload(stream, wspec.jobs);
      wspec.horizon = scenario.horizon();  // fault-plan window
    } else {
      workload = workflow::generate(wspec);
    }

    auto zoo = autoscale::standard_autoscalers();
    const auto idx = static_cast<std::size_t>(v[0]);
    if (idx >= zoo.size())
      throw std::invalid_argument("autoscale adapter: bad autoscaler index");

    autoscale::ElasticConfig config;
    config.cores_per_machine = static_cast<std::uint32_t>(v[1]);
    config.max_machines = 48;
    config.provisioning_delay = v[2];
    config.interval = v[3];
    fault::FaultPlan plan;
    if (v[4] > 0.0) {
      fault::FaultSpec fspec;
      fspec.rate = v[4];
      fspec.horizon = wspec.horizon;
      fspec.seed = fault_plan_seed(v, 4);
      fspec.targets = config.max_machines;
      fspec.mean_duration = 180.0;
      fspec.kinds = {fault::FaultKind::kMachineCrash};
      plan = fault::FaultPlan::generate(fspec);
      config.faults = &plan;
    }
    const auto result = autoscale::run_elastic(workload, *zoo[idx], config);

    double rented_seconds = 0.0;
    for (const double r : result.rentals) rented_seconds += r;

    TrialResult out;
    out.objective = result.mean_slowdown;
    out.metrics = {
        {"mean_slowdown", result.mean_slowdown},
        {"median_slowdown", result.median_slowdown},
        {"mean_response", result.mean_response},
        {"makespan", result.makespan},
        {"deadline_violation_rate", result.deadline_violation_rate()},
        {"norm_accuracy_over", result.metrics.norm_accuracy_over},
        {"norm_accuracy_under", result.metrics.norm_accuracy_under},
        {"machine_seconds", rented_seconds},
        {"faults_injected", static_cast<double>(result.faults_injected)},
        {"tasks_requeued", static_cast<double>(result.tasks_requeued)},
    };
    out.digest = result.slowdown_digest.serialize();
    return out;
  }

 private:
  std::vector<std::string> names_;
};

// ------------------------------------------------------------------- p2p --

class P2pAdapter final : public SimulatorAdapter {
 public:
  std::string domain() const override { return "p2p"; }
  std::string objective() const override { return "median_download_time"; }

  std::vector<ParamSpec> params() const override {
    return {
        {"peer_upload_mbps", {0.5, 1.0, 2.0}, {}},
        {"seed_upload_mbps", {4.0, 8.0, 16.0}, {}},
        {"initial_seeds", {1.0, 4.0}, {}},
        {"seed_time_mean", {600.0, 1800.0}, {}},
        fault_rate_param(),
        scenario_param("video-flashcrowd"),
    };
  }

  TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                  double scale) const override {
    p2p::SwarmConfig config;
    config.content_mb = std::max(50.0, 350.0 * scale);
    config.peer_upload_mbps = v[0];
    config.seed_upload_mbps = v[1];
    config.initial_seeds = static_cast<int>(v[2]);
    config.seed_time_mean = v[3];
    config.seed = seed;

    const bool from_trace = v[5] > 0.5;
    // Scenario replays need room past the trace horizon for the tail of
    // the swarm to finish downloading.
    const double horizon =
        from_trace ? named_scenario("video-flashcrowd").horizon() * 2.0
                   : std::max(2'000.0, 20'000.0 * scale);
    fault::FaultPlan plan;
    if (v[4] > 0.0) {
      fault::FaultSpec fspec;
      fspec.rate = v[4];
      fspec.horizon = horizon;
      fspec.seed = fault_plan_seed(v, 4);
      fspec.targets = 1;
      fspec.mean_magnitude = 0.3;
      fspec.kinds = {fault::FaultKind::kChurnSpike};
      plan = fault::FaultPlan::generate(fspec);
      config.faults = &plan;
    }
    p2p::SwarmResult result;
    if (from_trace) {
      auto events = trace::catalog::events(
          named_scenario("video-flashcrowd"), seed,
          scaled(20'000, scale, 2'000));
      trace::VectorEventStream stream(std::move(events));
      trace::catalog::SessionArrivalSource source(stream);
      result = p2p::simulate_swarm(config, source, horizon);
    } else {
      stats::Rng rng(seed ^ 0xa11afeedULL);
      const auto arrivals = p2p::flashcrowd_arrivals(
          0.02, horizon * 0.5, scaled(120, scale, 16), horizon * 0.1, 10.0,
          rng);
      result = p2p::simulate_swarm(config, arrivals, horizon);
    }

    TrialResult out;
    out.objective = result.median_download_time;
    out.metrics = {
        {"median_download_time", result.median_download_time},
        {"mean_download_time", result.mean_download_time},
        {"finished", static_cast<double>(result.finished)},
        {"aborted", static_cast<double>(result.aborted)},
        {"peak_swarm_size", static_cast<double>(result.peak_swarm_size)},
        {"peers", static_cast<double>(result.peers.size())},
        {"churned", static_cast<double>(result.churned)},
    };
    out.digest = result.download_digest.serialize();
    return out;
  }
};

// ----------------------------------------------------------------- graph --

class GraphAdapter final : public SimulatorAdapter {
 public:
  std::string domain() const override { return "graph"; }
  std::string objective() const override { return "runtime_proxy"; }

  std::vector<ParamSpec> params() const override {
    ParamSpec algorithm{"algorithm", {}, {}};
    const auto& algos = graph::all_algorithms();
    for (std::size_t i = 0; i < algos.size(); ++i) {
      algorithm.values.push_back(static_cast<double>(i));
      algorithm.labels.push_back(graph::to_string(algos[i]));
    }
    return {
        {"dataset", {0.0, 1.0, 2.0}, {"social", "random", "grid"}},
        {"scale_k", {1.0, 4.0, 16.0}, {}},  // thousands of vertices
        std::move(algorithm),
        {"threads", {1.0, 2.0, 4.0}, {}},
    };
  }

  TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                  double scale) const override {
    const auto n = static_cast<graph::VertexId>(
        scaled(static_cast<std::size_t>(std::llround(v[1] * 1000.0)), scale,
               64));
    stats::Rng rng(seed ^ 0x6ea9ULL);
    graph::Graph g = [&] {
      switch (static_cast<int>(v[0])) {
        case 0: return graph::preferential_attachment(n, 8, rng);
        case 1: return graph::erdos_renyi(n, 8.0, rng);
        default: {
          const auto side = static_cast<graph::VertexId>(std::max(
              8.0, std::round(std::sqrt(static_cast<double>(n)))));
          return graph::grid_2d(side);
        }
      }
    }();

    const auto algo =
        graph::all_algorithms()[static_cast<std::size_t>(v[2])];
    graph::KernelOptions opts;
    opts.threads = static_cast<std::uint32_t>(v[3]);
    const graph::WorkProfile work = graph::run_algorithm(g, algo, opts);

    // Price the measured profile on the single-node native platform model
    // — a deterministic runtime proxy, unlike wall-clock timing, so memoed
    // trials replay byte-identically.
    const auto platforms = graph::standard_platforms();
    const auto native = std::find_if(
        platforms.begin(), platforms.end(),
        [](const auto& p) { return p.name == "Native-1N"; });
    const double runtime =
        graph::predict_runtime(*native, algo, work, g.num_vertices(),
                               g.num_edges()) /
        static_cast<double>(opts.threads);

    TrialResult out;
    out.objective = runtime;
    out.metrics = {
        {"runtime_proxy", runtime},
        {"edges_traversed", static_cast<double>(work.edges_traversed)},
        {"iterations", static_cast<double>(work.iterations)},
        {"vertices", static_cast<double>(g.num_vertices())},
        {"edges", static_cast<double>(g.num_edges())},
    };
    return out;
  }
};

// ------------------------------------------------------------------ eco --

class EcoAdapter final : public SimulatorAdapter {
 public:
  std::string domain() const override { return "eco"; }
  std::string objective() const override { return "faas_p95_latency"; }

  std::vector<ParamSpec> params() const override {
    return {
        {"eco.machines", {8.0, 16.0, 32.0}, {}},
        {"eco.provisioning_delay", {15.0, 45.0, 120.0}, {}},
        {"eco.autoscaler", {0.0, 1.0, 2.0}, {"React", "Hist", "Token"}},
        {"eco.policy", {0.0, 1.0, 2.0}, {"FCFS", "EASY-BF", "SJF"}},
        fault_rate_param(),
    };
  }

  TrialResult run(const std::vector<double>& v, std::uint64_t seed,
                  double scale) const override {
    static const char* const kAutoscalers[] = {"React", "Hist", "Token"};
    static const char* const kPolicies[] = {"FCFS", "EASY-BF", "SJF"};

    eco::EcosystemSpec spec;
    spec.horizon = std::max(900.0, 3'600.0 * scale);
    spec.fabric.machines = static_cast<std::uint32_t>(v[0]);
    spec.fabric.cores_per_machine = 8;
    spec.fabric.provisioning_delay = v[1];

    spec.serverless.enabled = true;
    spec.serverless.backing = eco::ServerlessBacking::kCluster;
    spec.serverless.instance_cores = 1;
    spec.serverless.registry = {{"api", 0.08, 0.9, 128.0},
                                {"etl", 0.5, 1.8, 512.0}};
    spec.serverless.config.keep_alive = 120.0;
    spec.serverless.config.prewarmed = 0;
    stats::Rng faas_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    spec.serverless.invocations = serverless::bursty_invocations(
        spec.serverless.registry.size(), 1.0, 0.8 * spec.horizon, 240.0,
        scaled(24, scale, 4), faas_rng);

    spec.mmog.enabled = true;
    spec.mmog.provisioning = eco::ZoneProvisioning::kAutoscaled;
    spec.mmog.autoscaler = kAutoscalers[static_cast<std::size_t>(v[2])];
    spec.mmog.avatars_per_machine = 32;
    spec.mmog.report_interval = 30.0;
    spec.mmog.initial_machines = 1;
    spec.mmog.config.zones = 6;
    spec.mmog.config.crossing_time = 5.0;
    spec.mmog.config.act_mean = 25.0;
    spec.mmog.config.migrate_prob = 0.1;
    spec.mmog.config.session_mean = 0.5 * spec.horizon;
    spec.mmog.config.seed = seed;
    spec.mmog.arrivals = mmog::synthetic_zone_arrivals(
        scaled(300, scale, 32), spec.mmog.config.zones, 0.6 * spec.horizon,
        seed);

    spec.dags.enabled = true;
    spec.dags.scheduling = eco::DagScheduling::kSharedFabric;
    spec.dags.policy = kPolicies[static_cast<std::size_t>(v[3])];
    workflow::WorkloadSpec jobs;
    jobs.cls = workflow::WorkloadClass::kSynthetic;
    jobs.jobs = scaled(24, scale, 4);
    jobs.horizon = 0.5 * spec.horizon;
    jobs.seed = seed ^ 0xda3e39cb94b95bdbULL;
    spec.dags.workload = workflow::generate(jobs);

    fault::FaultPlan plan;
    if (v[4] > 0.0) {
      fault::FaultSpec fspec;
      fspec.rate = v[4];
      fspec.horizon = spec.horizon;
      fspec.seed = fault_plan_seed(v, 4);
      fspec.targets = spec.fabric.machines;
      fspec.mean_duration = 60.0;
      fspec.kinds = {fault::FaultKind::kMachineCrash};
      plan = fault::FaultPlan::generate(fspec);
      spec.faults = &plan;
    }

    const eco::EcosystemResult r = eco::run_ecosystem(spec);

    TrialResult out;
    out.objective = r.faas.p95_latency;
    out.metrics = {
        {"faas_p95_latency", r.faas.p95_latency},
        {"faas_p50_latency", r.faas.p50_latency},
        {"faas_cold_fraction", r.faas.cold_fraction},
        {"faas_failed", static_cast<double>(r.faas.failed_invocations)},
        {"faas_denials", static_cast<double>(r.fabric.faas_denials)},
        {"zones_residents", static_cast<double>(r.zones.residents)},
        {"zones_queued_logins", static_cast<double>(r.zones.queued_logins)},
        {"dags_mean_wait", r.dags.mean_wait},
        {"dags_mean_slowdown", r.dags.mean_slowdown},
        {"dags_tasks_requeued", static_cast<double>(r.dags.tasks_requeued)},
        {"fabric_machine_leases", static_cast<double>(r.fabric.machine_leases)},
        {"fabric_autoscale_decisions",
         static_cast<double>(r.fabric.autoscale_decisions)},
        {"fabric_peak_cores_leased",
         static_cast<double>(r.fabric.peak_cores_leased)},
        {"fabric_crashes", static_cast<double>(r.fabric.crashes)},
    };
    out.digest = r.faas.latency_digest.serialize();
    return out;
  }
};

}  // namespace

std::unique_ptr<SimulatorAdapter> make_portfolio_adapter() {
  return std::make_unique<PortfolioAdapter>();
}
std::unique_ptr<SimulatorAdapter> make_serverless_adapter() {
  return std::make_unique<ServerlessAdapter>();
}
std::unique_ptr<SimulatorAdapter> make_autoscale_adapter() {
  return std::make_unique<AutoscaleAdapter>();
}
std::unique_ptr<SimulatorAdapter> make_p2p_adapter() {
  return std::make_unique<P2pAdapter>();
}
std::unique_ptr<SimulatorAdapter> make_graph_adapter() {
  return std::make_unique<GraphAdapter>();
}
std::unique_ptr<SimulatorAdapter> make_eco_adapter() {
  return std::make_unique<EcoAdapter>();
}

std::vector<std::string> adapter_domains() {
  return {"portfolio", "serverless", "autoscale", "p2p", "graph", "eco"};
}

std::unique_ptr<SimulatorAdapter> make_adapter(const std::string& domain) {
  if (domain == "portfolio") return make_portfolio_adapter();
  if (domain == "serverless") return make_serverless_adapter();
  if (domain == "autoscale") return make_autoscale_adapter();
  if (domain == "p2p") return make_p2p_adapter();
  if (domain == "graph") return make_graph_adapter();
  if (domain == "eco") return make_eco_adapter();
  std::string known;
  for (const auto& d : adapter_domains()) {
    if (!known.empty()) known += ", ";
    known += d;
  }
  throw std::invalid_argument("unknown campaign domain '" + domain +
                              "' (known: " + known + ")");
}

}  // namespace atlarge::exp
