#include "atlarge/sim/sampler.hpp"

#include <utility>

namespace atlarge::sim {

Sampler::Sampler(Simulation& sim, Time start, Time end, Time period,
                 Probe probe)
    : sim_(sim), end_(end), period_(period), probe_(std::move(probe)) {
  sim_.schedule_at(start, [this] { tick(); });
}

void Sampler::tick() {
  if (sim_.now() > end_) return;
  samples_.push_back(Sample{sim_.now(), probe_()});
  if (sim_.now() + period_ <= end_) {
    sim_.schedule_after(period_, [this] { tick(); });
  }
}

std::vector<double> Sampler::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

}  // namespace atlarge::sim
