#include "atlarge/sim/resource.hpp"

#include <cassert>
#include <utility>

namespace atlarge::sim {

Resource::Resource(Simulation& sim, std::uint64_t capacity)
    : sim_(sim), capacity_(capacity) {}

void Resource::acquire(std::uint64_t units, Grant on_grant) {
  assert(units <= capacity_ && "request exceeds total capacity");
  waiting_.push_back(Waiter{units, std::move(on_grant)});
  admit();
}

void Resource::release(std::uint64_t units) {
  assert(units <= in_use_ && "releasing more than acquired");
  in_use_ -= units;
  admit();
}

void Resource::admit() {
  while (!waiting_.empty() &&
         waiting_.front().units <= capacity_ - in_use_) {
    Waiter w = std::move(waiting_.front());
    waiting_.pop_front();
    in_use_ += w.units;
    // Defer through the event queue so grants never run inside the caller's
    // stack frame (re-entrancy safety).
    sim_.schedule_after(0.0, std::move(w.on_grant));
  }
}

}  // namespace atlarge::sim
