#include "atlarge/sim/simulation.hpp"

#include <algorithm>
#include <utility>

namespace atlarge::sim {

bool EventHandle::pending() const noexcept { return alive_ && *alive_; }

bool EventHandle::cancel() noexcept {
  if (!pending()) return false;
  *alive_ = false;
  return true;
}

EventHandle Simulation::schedule_at(Time at, Action action) {
  Event ev;
  ev.time = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.action = std::move(action);
  ev.alive = std::make_shared<bool>(true);
  EventHandle handle(ev.alive);
  queue_.push(std::move(ev));
  return handle;
}

EventHandle Simulation::schedule_after(Time delay, Action action) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(action));
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    *ev.alive = false;         // fired; handles report !pending()
    now_ = ev.time;
    ev.action();
    return true;
  }
  return false;
}

std::size_t Simulation::run_until(Time until) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= until) {
    if (step()) ++executed;
  }
  if (queue_.empty() || queue_.top().time > until) now_ = std::max(now_, until);
  return executed;
}

std::size_t Simulation::run() {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && step()) ++executed;
  return executed;
}

std::size_t Simulation::pending() const noexcept {
  // The queue may hold cancelled tombstones; they are filtered on pop, and
  // counting them here would over-report. Walk is avoided by tracking only
  // an upper bound: tombstones are rare in practice (cancellation is the
  // exception), so report queue size. Exact accounting is not needed by any
  // client; tests treat this as an upper bound.
  return queue_.size();
}

}  // namespace atlarge::sim
