#include "atlarge/sim/simulation.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace atlarge::sim {

namespace {
std::atomic<QueueKind> g_default_queue_kind{QueueKind::kHeap};
}  // namespace

QueueKind default_queue_kind() noexcept {
  return g_default_queue_kind.load(std::memory_order_relaxed);
}

void set_default_queue_kind(QueueKind kind) noexcept {
  g_default_queue_kind.store(kind, std::memory_order_relaxed);
}

Simulation::Simulation(QueueKind kind) : kind_(kind) {}

// Out of line so EventSlot destructors (which may destroy arena-resident
// payloads) run before arena_ — guaranteed by member order: arena_ is
// declared first, so it is destroyed last.
Simulation::~Simulation() = default;

bool EventHandle::pending() const noexcept {
  return sim_ != nullptr && sim_->slot_pending(slot_, generation_);
}

bool EventHandle::cancel() noexcept {
  return sim_ != nullptr && sim_->cancel_slot(slot_, generation_);
}

bool Simulation::slot_pending(std::uint32_t slot,
                              std::uint64_t generation) const noexcept {
  assert_owner_thread();
  return slot < slots_.size() && slots_[slot].generation == generation &&
         slots_[slot].live;
}

bool Simulation::cancel_slot(std::uint32_t slot,
                             std::uint64_t generation) noexcept {
  assert_owner_thread();
  if (!slot_pending(slot, generation)) return false;
  EventSlot& s = slots_[slot];
  s.live = false;
  destroy_payload(s);  // drop captured state eagerly; the queue record
                       // stays behind as a tombstone reclaimed on pop
  --live_;
  if (observer_ != nullptr) observer_->on_cancel(now_, live_);
  return true;
}

void Simulation::note_alloc_event() noexcept {
  ++alloc_events_;
  if (observer_ != nullptr) observer_->on_alloc_event();
}

std::uint32_t Simulation::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (slots_.size() >= (std::size_t{1} << kSlotBits))
    throw std::length_error("Simulation: too many concurrent events");
  if (slots_.size() == slots_.capacity()) note_alloc_event();
  const std::size_t chunks_before = arena_.chunks();
  void* const block = arena_.allocate(EventSlot::kInlineBytes);
  if (arena_.chunks() != chunks_before) note_alloc_event();
  slots_.emplace_back();
  slots_.back().block = block;  // paired with the slot for its lifetime
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulation::destroy_payload(EventSlot& s) noexcept {
  if (s.ops == nullptr) return;
  void* const payload =
      s.heap_payload != nullptr ? s.heap_payload : s.block;
  s.ops->destroy(payload);
  if (s.heap_payload != nullptr) {
    if (s.payload_class != 0)
      arena_.deallocate(s.heap_payload, s.payload_class);
    else
      ::operator delete(s.heap_payload);
  }
  s.ops = nullptr;
  s.heap_payload = nullptr;
  s.payload_class = 0;
}

void Simulation::release_slot(std::uint32_t slot) noexcept {
  EventSlot& s = slots_[slot];
  destroy_payload(s);
  s.live = false;
  ++s.generation;  // invalidate every outstanding handle to this slot
  if (free_slots_.size() == free_slots_.capacity()) note_alloc_event();
  free_slots_.push_back(slot);
}

QueueRecord Simulation::pack(Time time, std::uint64_t seq_slot) noexcept {
  // Valid because time >= 0 (clamped in schedule_at): the IEEE-754 bit
  // pattern of a non-negative double is monotone in its value.
  return (static_cast<QueueRecord>(std::bit_cast<std::uint64_t>(time)) << 64) |
         seq_slot;
}

Time Simulation::next_event_time() {
  assert_owner_thread();
  purge_cancelled();
  return queue_empty() ? std::numeric_limits<Time>::infinity()
                       : record_time(queue_front());
}

EventHandle Simulation::schedule_slot(Time at, std::uint32_t slot) {
  EventSlot& s = slots_[slot];
  s.live = true;
  ++live_;
  const Time when = std::max(at, now_);
  queue_push(pack(when, (next_seq_++ << kSlotBits) | slot));
  if (observer_ != nullptr) observer_->on_schedule(when, live_);
  return EventHandle(this, slot, s.generation);
}

bool Simulation::queue_empty() const noexcept {
  return kind_ == QueueKind::kHeap ? heap_.empty() : calendar_.empty();
}

QueueRecord Simulation::queue_front() {
  return kind_ == QueueKind::kHeap ? heap_.front() : calendar_.front();
}

void Simulation::queue_pop_front() {
  if (kind_ == QueueKind::kHeap) {
    heap_pop_front();
  } else if (calendar_.pop_front()) {
    note_alloc_event();
  }
}

void Simulation::queue_push(QueueRecord rec) {
  if (kind_ == QueueKind::kHeap) {
    if (heap_.size() == heap_.capacity()) note_alloc_event();
    heap_push(rec);
  } else if (calendar_.push(rec)) {
    note_alloc_event();
  }
}

void Simulation::queue_extract_equal_run() {
  batch_.clear();
  const std::size_t cap_before = batch_.capacity();
  if (kind_ == QueueKind::kHeap) {
    // Heap pops come out already sorted — no post-pass needed.
    heap_extract_equal_run();
  } else {
    if (calendar_.extract_equal_run(batch_)) note_alloc_event();
    // The bucket sweep collects in bucket order; sorting by full 128-bit
    // record restores (time, seq) scheduling order — every record in the
    // batch shares one timestamp, so this is exactly the
    // tie-break-by-sequence order the per-pop loop used to produce.
    std::sort(batch_.begin(), batch_.end());
  }
  if (batch_.capacity() != cap_before) note_alloc_event();
}

void Simulation::heap_push(QueueRecord rec) {
  heap_.push_back(rec);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (heap_[parent] <= rec) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = rec;
}

void Simulation::heap_pop_front() noexcept {
  const std::size_t n = heap_.size() - 1;
  const QueueRecord back = heap_[n];
  heap_.pop_back();
  if (n == 0) return;
  // Bottom-up pop: sink the root hole to the bottom along min-children
  // (one compare chain per level, no test against `back`), then float
  // `back` up from there — it usually belongs near the bottom, so this
  // does fewer compares than the classic top-down sift.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (heap_[c] < heap_[best]) best = c;
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (heap_[parent] <= back) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = back;
}

// Removes every record sharing the root's timestamp and appends them to
// batch_ — already in full record order, because consecutive heap pops of
// equal-time records come out sorted by (seq, slot). Equal-key pops on
// the 4-ary heap are cheap (the replacement's float-up is shallow while
// the root's timestamp repeats), so pop-collection measured faster here
// than subtree extraction with Floyd-style hole repair — the batching win
// on the heap is in the dispatch loop (queue mutation decoupled from
// action side effects, one timestamp resolution per run), not in the pop
// count. The calendar backend's extract is the opposite: one bucket sweep
// replaces per-pop year scans entirely.
void Simulation::heap_extract_equal_run() {
  const QueueRecord front = heap_.front();
  const std::uint64_t time_bits = static_cast<std::uint64_t>(front >> 64);
  batch_.push_back(front);
  heap_pop_front();
  while (!heap_.empty() &&
         static_cast<std::uint64_t>(heap_.front() >> 64) == time_bits) {
    batch_.push_back(heap_.front());
    heap_pop_front();
  }
}

void Simulation::reserve(std::size_t events, std::size_t payload_bytes) {
  slots_.reserve(events);
  free_slots_.reserve(events);
  batch_.reserve(events);
  if (kind_ == QueueKind::kHeap) {
    heap_.reserve(events);
  } else {
    calendar_.reserve(events);
  }
  arena_.reserve(events * EventSlot::kInlineBytes + payload_bytes);
}

// Marks the slot fired and invokes the payload in place — its arena block
// is stable, so no move-out is needed even if the action grows the slot
// pool (which may reallocate slots_, hence no slot reference is held
// across the call). The slot's generation is bumped up front so stale
// handles die before the action runs, but the slot only joins the free
// list afterwards: its payload must not be overwritten while executing.
// The guard destroys the payload and recycles the slot even if the action
// throws.
void Simulation::fire_slot(std::uint32_t slot) {
  EventSlot& s = slots_[slot];
  s.live = false;  // fired; handles report !pending()
  --live_;
  if (observer_ != nullptr) observer_->on_fire(now_, live_);
  const detail::PayloadOps* const ops = s.ops;
  void* const heap_payload = s.heap_payload;
  void* const payload = heap_payload != nullptr ? heap_payload : s.block;
  const std::uint32_t cls = s.payload_class;
  s.ops = nullptr;  // ownership moves to the guard below
  s.heap_payload = nullptr;
  s.payload_class = 0;
  ++s.generation;  // invalidate every outstanding handle to this slot
  struct PayloadGuard {
    Simulation* sim;
    const detail::PayloadOps* ops;
    void* payload;
    void* heap_payload;
    std::uint32_t cls;
    std::uint32_t slot;
    ~PayloadGuard() {
      ops->destroy(payload);
      if (heap_payload != nullptr) {
        if (cls != 0)
          sim->arena_.deallocate(heap_payload, cls);
        else
          ::operator delete(heap_payload);
      }
      if (sim->free_slots_.size() == sim->free_slots_.capacity())
        sim->note_alloc_event();
      sim->free_slots_.push_back(slot);
    }
  } guard{this, ops, payload, heap_payload, cls, slot};
  ops->invoke(payload);
}

bool Simulation::step() {
  assert_owner_thread();
  while (!queue_empty()) {
    const QueueRecord top = queue_front();
    queue_pop_front();
    const std::uint32_t slot = record_slot(top);
    if (!slots_[slot].live) {  // cancelled tombstone
      release_slot(slot);
      continue;
    }
    now_ = record_time(top);
    fire_slot(slot);
    return true;
  }
  return false;
}

void Simulation::purge_cancelled() {
  while (!queue_empty()) {
    const QueueRecord front = queue_front();
    const std::uint32_t slot = record_slot(front);
    if (slots_[slot].live) break;
    queue_pop_front();
    release_slot(slot);
  }
}

// Executes one equal-time batch: a single queue extraction per distinct
// timestamp instead of one pop (and heap repair) per event. The guard
// returns any unexecuted remainder to the queue — after stop(), or if an
// action throws — with the original records, so resuming preserves the
// exact (time, seq) order. Events an action schedules at the current
// timestamp carry larger sequence numbers and fire in the *next* batch at
// this time, exactly as the per-pop loop ordered them. batch_ is swapped
// out during execution so a reentrant run() inside an action cannot
// clobber the batch being drained.
std::size_t Simulation::run_batch() {
  queue_extract_equal_run();
  now_ = record_time(batch_.front());
  struct BatchGuard {
    Simulation* sim;
    std::vector<QueueRecord> batch;
    std::size_t next = 0;
    ~BatchGuard() {
      for (std::size_t j = next; j < batch.size(); ++j)
        sim->queue_push(batch[j]);
      batch.clear();
      sim->batch_.swap(batch);  // hand the capacity back for reuse
    }
  } g{this, {}};
  g.batch.swap(batch_);
  std::size_t executed = 0;
  while (g.next < g.batch.size()) {
    const QueueRecord rec = g.batch[g.next++];
    const std::uint32_t slot = record_slot(rec);
    if (!slots_[slot].live) {  // cancelled mid-batch or earlier
      release_slot(slot);
      continue;
    }
    fire_slot(slot);
    ++executed;
    if (stopped_) break;
  }
  return executed;
}

// Crossed sampling boundaries fire before the batch that passes them: the
// clock steps to each boundary (so the hook sees now() == boundary), the
// hook observes the state produced by strictly earlier events, and only
// then does the batch advance the clock. Boundary times depend on event
// timestamps alone, never on the queue backend.
void Simulation::emit_samples(Time upto) {
  while (next_sample_ <= upto) {
    now_ = next_sample_;
    sampling_hook_->on_sample(next_sample_);
    next_sample_ += sample_interval_;
  }
}

std::size_t Simulation::run_until(Time until) {
  assert_owner_thread();
  stopped_ = false;
  std::size_t executed = 0;
  if (observer_ != nullptr) observer_->on_run_begin(now_);
  // Purge before peeking: a cancelled tombstone at the front may carry an
  // earlier timestamp than the first live event, and peeking at it would
  // stop the run short of events that should still fire.
  purge_cancelled();
  while (!stopped_ && !queue_empty() &&
         record_time(queue_front()) <= until) {
    if (sampling_hook_ != nullptr) emit_samples(record_time(queue_front()));
    executed += run_batch();
    purge_cancelled();
  }
  if (queue_empty() || record_time(queue_front()) > until) {
    // Cover the idle tail so a recorded series spans the full horizon (an
    // infinite horizon has no tail to cover).
    if (sampling_hook_ != nullptr && !stopped_ && std::isfinite(until))
      emit_samples(until);
    now_ = std::max(now_, until);
  }
  if (observer_ != nullptr) observer_->on_run_end(now_, executed);
  return executed;
}

std::size_t Simulation::run() {
  assert_owner_thread();
  stopped_ = false;
  std::size_t executed = 0;
  if (observer_ != nullptr) observer_->on_run_begin(now_);
  purge_cancelled();
  while (!stopped_ && !queue_empty()) {
    if (sampling_hook_ != nullptr) emit_samples(record_time(queue_front()));
    executed += run_batch();
    purge_cancelled();
  }
  if (observer_ != nullptr) observer_->on_run_end(now_, executed);
  return executed;
}

}  // namespace atlarge::sim
