#include "atlarge/sim/simulation.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace atlarge::sim {

bool EventHandle::pending() const noexcept {
  return sim_ != nullptr && sim_->slot_pending(slot_, generation_);
}

bool EventHandle::cancel() noexcept {
  return sim_ != nullptr && sim_->cancel_slot(slot_, generation_);
}

bool Simulation::slot_pending(std::uint32_t slot,
                              std::uint64_t generation) const noexcept {
  return slot < slots_.size() && slots_[slot].generation == generation &&
         slots_[slot].live;
}

bool Simulation::cancel_slot(std::uint32_t slot,
                             std::uint64_t generation) noexcept {
  if (!slot_pending(slot, generation)) return false;
  EventSlot& s = slots_[slot];
  s.live = false;
  s.action = nullptr;  // drop captured state eagerly; the queue record stays
                       // behind as a tombstone reclaimed on pop
  --live_;
  if (observer_ != nullptr) observer_->on_cancel(now_, live_);
  return true;
}

std::uint32_t Simulation::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (slots_.size() >= (std::size_t{1} << kSlotBits))
    throw std::length_error("Simulation: too many concurrent events");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulation::release_slot(std::uint32_t slot) noexcept {
  EventSlot& s = slots_[slot];
  s.action = nullptr;
  s.live = false;
  ++s.generation;  // invalidate every outstanding handle to this slot
  free_slots_.push_back(slot);
}

Simulation::QueueRecord Simulation::pack(Time time,
                                         std::uint64_t seq_slot) noexcept {
  // Valid because time >= 0 (clamped in schedule_at): the IEEE-754 bit
  // pattern of a non-negative double is monotone in its value.
  return (static_cast<QueueRecord>(std::bit_cast<std::uint64_t>(time)) << 64) |
         seq_slot;
}

Time Simulation::record_time(QueueRecord rec) noexcept {
  return std::bit_cast<double>(static_cast<std::uint64_t>(rec >> 64));
}

void Simulation::heap_push(QueueRecord rec) {
  heap_.push_back(rec);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (heap_[parent] <= rec) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = rec;
}

void Simulation::heap_pop_front() noexcept {
  const std::size_t n = heap_.size() - 1;
  const QueueRecord back = heap_[n];
  heap_.pop_back();
  if (n == 0) return;
  // Bottom-up pop: sink the root hole to the bottom along min-children
  // (one compare chain per level, no test against `back`), then float
  // `back` up from there — it usually belongs near the bottom, so this
  // does fewer compares than the classic top-down sift.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (heap_[c] < heap_[best]) best = c;
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (heap_[parent] <= back) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = back;
}

void Simulation::reserve(std::size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

EventHandle Simulation::schedule_at(Time at, Action action) {
  const std::uint32_t slot = acquire_slot();
  EventSlot& s = slots_[slot];
  s.action = std::move(action);
  s.live = true;
  ++live_;
  const Time when = std::max(at, now_);
  heap_push(pack(when, (next_seq_++ << kSlotBits) | slot));
  if (observer_ != nullptr) observer_->on_schedule(when, live_);
  return EventHandle(this, slot, s.generation);
}

EventHandle Simulation::schedule_after(Time delay, Action action) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(action));
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const QueueRecord top = heap_.front();
    heap_pop_front();
    const std::uint32_t slot = record_slot(top);
    if (!slots_[slot].live) {  // cancelled tombstone
      release_slot(slot);
      continue;
    }
    slots_[slot].live = false;  // fired; handles report !pending()
    --live_;
    now_ = record_time(top);
    if (observer_ != nullptr) observer_->on_fire(now_, live_);
    Action action = std::move(slots_[slot].action);
    release_slot(slot);  // recycle before running: the action may
                         // schedule new events into this very slot
    action();
    return true;
  }
  return false;
}

void Simulation::purge_cancelled() noexcept {
  while (!heap_.empty() && !slots_[record_slot(heap_.front())].live) {
    release_slot(record_slot(heap_.front()));
    heap_pop_front();
  }
}

std::size_t Simulation::run_until(Time until) {
  stopped_ = false;
  std::size_t executed = 0;
  if (observer_ != nullptr) observer_->on_run_begin(now_);
  // Purge before peeking: a cancelled tombstone at the front may carry an
  // earlier timestamp than the first live event, and peeking at it would
  // let step() fire an event beyond `until`.
  purge_cancelled();
  while (!stopped_ && !heap_.empty() && record_time(heap_.front()) <= until) {
    if (step()) ++executed;
    purge_cancelled();
  }
  if (heap_.empty() || record_time(heap_.front()) > until)
    now_ = std::max(now_, until);
  if (observer_ != nullptr) observer_->on_run_end(now_, executed);
  return executed;
}

std::size_t Simulation::run() {
  stopped_ = false;
  std::size_t executed = 0;
  if (observer_ != nullptr) observer_->on_run_begin(now_);
  while (!stopped_ && step()) ++executed;
  if (observer_ != nullptr) observer_->on_run_end(now_, executed);
  return executed;
}

}  // namespace atlarge::sim
