#include "atlarge/sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace atlarge::sim {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::infinity();
}  // namespace

ShardedSimulation::ShardedSimulation(const ShardOptions& options)
    : pool_(std::max<std::size_t>(1, options.threads)),
      lookahead_(std::max(0.0, options.lookahead)) {
  const std::size_t shards = std::max<std::size_t>(1, options.shards);
  lps_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    lps_.push_back(std::make_unique<Lp>(options.queue));
  lanes_ = std::min(pool_.size(), shards);
  lane_executed_.resize(lanes_, 0);
}

ShardedSimulation::~ShardedSimulation() = default;

void ShardedSimulation::send(std::size_t src, std::size_t dst, Time at,
                             std::uint64_t key, std::function<void()> fn) {
  assert(src < lps_.size() && dst < lps_.size());
  // Always buffered, even outside a run or when src == dst: every
  // delivery then goes through the same sorted barrier path, so the
  // destination's kernel sequence numbers do not depend on *where* the
  // send originated.
  Lp& lp = *lps_[src];
  Message m;
  m.at = at;
  m.key = key;
  m.src = static_cast<std::uint32_t>(src);
  m.dst = static_cast<std::uint32_t>(dst);
  m.seq = lp.next_send_seq++;
  m.fn = std::move(fn);
  lp.outbox.push_back(std::move(m));
}

// Barrier delivery: collect every outbox, impose the global total order
// (at, key, src, seq), and schedule into the destination kernels from the
// coordinator thread (all lanes are quiescent here, so owner-thread
// checks are disarmed). The sort makes the destination's event order a
// pure function of message content, not of lane timing; putting the
// engine's entity `key` before `src` keeps tie-breaks stable when the
// same entities are spread across a different number of shards.
void ShardedSimulation::deliver_mailboxes() {
  delivery_.clear();
  for (auto& lp : lps_) {
    for (auto& m : lp->outbox) delivery_.push_back(std::move(m));
    lp->outbox.clear();
  }
  if (delivery_.empty()) return;
  std::sort(delivery_.begin(), delivery_.end(),
            [](const Message& a, const Message& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.key != b.key) return a.key < b.key;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  messages_ += delivery_.size();
  for (auto& m : delivery_) lps_[m.dst]->sim.schedule_at(m.at, std::move(m.fn));
  delivery_.clear();
}

// One lookahead window: every LP executes its events in [floor, bound]
// in parallel, one lane per (lp mod lanes) with stable worker affinity.
// An LP with nothing in the window still gets its clock advanced to the
// bound (and its sampling boundaries emitted) by run_until's idle path.
std::size_t ShardedSimulation::run_window(Time window_until) {
  ++windows_;
  executing_ = true;
  std::fill(lane_executed_.begin(), lane_executed_.end(), std::size_t{0});
  auto lane_job = [this, window_until](std::size_t lane) {
    std::size_t fired = 0;
    for (std::size_t i = lane; i < lps_.size(); i += lanes_) {
      Simulation& sim = lps_[i]->sim;
      sim.bind_owner_thread();
      fired += sim.run_until(window_until);
      sim.clear_owner_thread();
    }
    lane_executed_[lane] = fired;
  };
  // Lane L runs on worker L-1 every window (run_on pinning); lane 0 is
  // the coordinator itself. wait_idle is the window barrier.
  for (std::size_t lane = 1; lane < lanes_; ++lane)
    pool_.run_on(lane - 1, [&lane_job, lane] { lane_job(lane); });
  lane_job(0);
  pool_.wait_idle();
  executing_ = false;
  std::size_t fired = 0;
  for (const std::size_t n : lane_executed_) fired += n;
  return fired;
}

std::size_t ShardedSimulation::run_until(Time until) {
  std::size_t executed = 0;
  for (;;) {
    deliver_mailboxes();
    Time floor = kInf;
    for (auto& lp : lps_) floor = std::min(floor, lp->sim.next_event_time());
    if (floor == kInf || floor > until) break;
    Time bound;
    if (lookahead_ > 0.0) {
      // Exclusive upper bound: events at exactly floor + L may already
      // depend on messages sent from inside this window.
      bound = std::nextafter(floor + lookahead_, -kInf);
      bound = std::min(bound, until);
    } else {
      bound = floor;  // zero lookahead: one timestamp per window
    }
    executed += run_window(bound);
  }
  if (std::isfinite(until)) {
    // Idle tail, serially: advance every LP clock to the horizon so
    // recorded sampling series span it (mirrors Simulation::run_until).
    for (auto& lp : lps_) lp->sim.run_until(until);
  }
  return executed;
}

std::size_t ShardedSimulation::run() { return run_until(kInf); }

}  // namespace atlarge::sim
