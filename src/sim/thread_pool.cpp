#include "atlarge/sim/thread_pool.hpp"

#include <atomic>

namespace atlarge::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    jobs_.clear();
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0 && jobs_.empty()) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();  // size-1 pool: run inline, nothing to synchronize with
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t fanout = std::min(size(), n);
  if (fanout <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining = fanout;

  // fn and n outlive the join below, so the body may capture them by
  // reference; `shared` keeps the latch alive for stragglers.
  auto body = [shared, &fn, n] {
    for (std::size_t i = shared->next.fetch_add(1); i < n;
         i = shared->next.fetch_add(1)) {
      fn(i);
    }
    std::lock_guard<std::mutex> lock(shared->m);
    if (--shared->remaining == 0) shared->done.notify_all();
  };

  for (std::size_t w = 1; w < fanout; ++w) submit(body);
  body();  // the calling thread is the last lane

  std::unique_lock<std::mutex> lock(shared->m);
  shared->done.wait(lock, [&] { return shared->remaining == 0; });
}

}  // namespace atlarge::sim
