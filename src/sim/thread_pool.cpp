#include "atlarge/sim/thread_pool.hpp"

#include <atomic>

namespace atlarge::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  pinned_.resize(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    jobs_.clear();
    for (auto& q : pinned_) q.clear();
    pinned_pending_ = 0;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, index] {
        return stop_ || !pinned_[index].empty() || !jobs_.empty();
      });
      if (stop_) return;
      // Pinned work first: a pinned job is an ordering promise (per-worker
      // FIFO), shared work is load-balanced filler.
      if (!pinned_[index].empty()) {
        job = std::move(pinned_[index].front());
        pinned_[index].pop_front();
        --pinned_pending_;
      } else {
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0 && jobs_.empty() && pinned_pending_ == 0)
        idle_cv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();  // size-1 pool: run inline, nothing to synchronize with
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::run_on(std::size_t worker_index, std::function<void()> job) {
  if (workers_.empty()) {
    job();  // size-1 pool: the caller is the only lane
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinned_[worker_index % pinned_.size()].push_back(std::move(job));
    ++pinned_pending_;
  }
  // notify_all, not notify_one: only the target worker can take this job,
  // and notify_one might wake a different one that goes back to sleep.
  work_cv_.notify_all();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return jobs_.empty() && pinned_pending_ == 0 && in_flight_ == 0;
  });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t fanout = std::min(size(), n);
  if (fanout <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining = fanout;

  // fn and n outlive the join below, so the body may capture them by
  // reference; `shared` keeps the latch alive for stragglers.
  auto body = [shared, &fn, n] {
    for (std::size_t i = shared->next.fetch_add(1); i < n;
         i = shared->next.fetch_add(1)) {
      fn(i);
    }
    std::lock_guard<std::mutex> lock(shared->m);
    if (--shared->remaining == 0) shared->done.notify_all();
  };

  for (std::size_t w = 1; w < fanout; ++w) submit(body);
  body();  // the calling thread is the last lane

  std::unique_lock<std::mutex> lock(shared->m);
  shared->done.wait(lock, [&] { return shared->remaining == 0; });
}

}  // namespace atlarge::sim
