#include "atlarge/stats/rng.hpp"

#include <cmath>

namespace atlarge::stats {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u;
  double v;
  double s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  // uniform() is in [0,1); 1-u is in (0,1], so log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace atlarge::stats
