#include "atlarge/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace atlarge::stats {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double quantile(std::span<const double> sample, double q) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (double x : sample) total += x;
  return total / static_cast<double>(sample.size());
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(sorted);
  double m2 = 0.0;
  for (double x : sorted) m2 += (x - s.mean) * (x - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(m2 / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.median = quantile_sorted(sorted, 0.5);
  s.q1 = quantile_sorted(sorted, 0.25);
  s.q3 = quantile_sorted(sorted, 0.75);
  return s;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void TimeWeighted::observe(double time, double value) noexcept {
  if (!started_) {
    started_ = true;
    start_time_ = last_time_ = time;
    value_ = value;
    return;
  }
  if (time > last_time_) {
    integral_ += value_ * (time - last_time_);
    last_time_ = time;
  }
  value_ = value;
}

double TimeWeighted::average(double end_time) const noexcept {
  if (!started_ || end_time <= start_time_) return value_;
  double integral = integral_;
  if (end_time > last_time_) integral += value_ * (end_time - last_time_);
  return integral / (end_time - start_time_);
}

}  // namespace atlarge::stats
