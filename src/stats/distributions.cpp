#include "atlarge/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace atlarge::stats {

Zipf::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be positive");
  if (s <= 0.0) throw std::invalid_argument("Zipf: exponent must be positive");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_[rank - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::size_t Zipf::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double Zipf::pmf(std::size_t rank) const {
  if (rank == 0 || rank > cdf_.size()) return 0.0;
  const double hi = cdf_[rank - 1];
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return hi - lo;
}

Pareto::Pareto(double scale, double shape) noexcept
    : scale_(scale), shape_(shape) {}

double Pareto::operator()(Rng& rng) const noexcept {
  return scale_ / std::pow(1.0 - rng.uniform(), 1.0 / shape_);
}

double Pareto::mean() const noexcept {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * scale_ / (shape_ - 1.0);
}

BoundedPareto::BoundedPareto(double lo, double hi, double shape) noexcept
    : lo_(lo), hi_(hi), shape_(shape) {}

double BoundedPareto::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const double la = std::pow(lo_, shape_);
  const double ha = std::pow(hi_, shape_);
  // Inverse CDF of the Pareto truncated to [lo, hi].
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape_);
}

Weibull::Weibull(double scale, double shape) noexcept
    : scale_(scale), shape_(shape) {}

double Weibull::operator()(Rng& rng) const noexcept {
  return scale_ * std::pow(-std::log(1.0 - rng.uniform()), 1.0 / shape_);
}

LogNormal::LogNormal(double mu, double sigma) noexcept
    : mu_(mu), sigma_(sigma) {}

double LogNormal::operator()(Rng& rng) const noexcept {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormal::mean() const noexcept {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

Discrete::Discrete(std::vector<double> weights) {
  if (weights.empty()) throw std::invalid_argument("Discrete: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Discrete: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Discrete: zero total weight");
  cdf_.resize(weights.size());
  double run = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    run += weights[i] / total;
    cdf_[i] = run;
  }
  cdf_.back() = 1.0;
}

std::size_t Discrete::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace atlarge::stats
