#include "atlarge/stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "atlarge/stats/descriptive.hpp"

namespace atlarge::stats {

Interval bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t resamples, double confidence) {
  Interval ci;
  if (sample.empty()) return ci;
  ci.point = statistic(sample);
  if (sample.size() == 1 || resamples == 0) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }
  std::vector<double> stats;
  stats.reserve(resamples);
  std::vector<double> resample(sample.size());
  const auto n = static_cast<std::int64_t>(sample.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& x : resample)
      x = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = quantile_sorted(stats, alpha);
  ci.hi = quantile_sorted(stats, 1.0 - alpha);
  return ci;
}

Interval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                           std::size_t resamples, double confidence) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, rng,
      resamples, confidence);
}

}  // namespace atlarge::stats
