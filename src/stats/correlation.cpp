#include "atlarge/stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "atlarge/stats/descriptive.hpp"

namespace atlarge::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> result(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                       + 1.0;
    for (std::size_t k = i; k <= j; ++k) result[order[k]] = avg;
    i = j + 1;
  }
  return result;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

double kendall(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const std::size_t n = x.size();
  long long concordant = 0;
  long long discordant = 0;
  long long ties_x = 0;
  long long ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2;
  const double denom = std::sqrt((n0 - static_cast<double>(ties_x)) *
                                 (n0 - static_cast<double>(ties_y)));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace atlarge::stats
