#include "atlarge/stats/violin.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>

namespace atlarge::stats {

DensityCurve kde(std::span<const double> sample, std::size_t points) {
  DensityCurve curve;
  if (sample.empty() || points == 0) return curve;
  const Summary s = summarize(sample);
  // Silverman's rule of thumb; fall back to a small constant for
  // degenerate (constant) samples so the violin still has width.
  double sigma = std::min(s.stddev, s.iqr() / 1.34);
  if (sigma <= 0.0) sigma = s.stddev > 0.0 ? s.stddev : 0.25;
  const double n = static_cast<double>(sample.size());
  curve.bandwidth = 0.9 * sigma * std::pow(n, -0.2);
  if (curve.bandwidth <= 0.0) curve.bandwidth = 0.25;

  const double lo = s.min - curve.bandwidth;
  const double hi = s.max + curve.bandwidth;
  const double step = points > 1 ? (hi - lo) / static_cast<double>(points - 1)
                                 : 0.0;
  curve.grid.resize(points);
  curve.density.resize(points);
  const double norm =
      1.0 / (n * curve.bandwidth * std::sqrt(2.0 * std::numbers::pi));
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    curve.grid[i] = x;
    double density = 0.0;
    for (double xi : sample) {
      const double z = (x - xi) / curve.bandwidth;
      density += std::exp(-0.5 * z * z);
    }
    curve.density[i] = density * norm;
  }
  return curve;
}

std::size_t ViolinSummary::below(double threshold) const {
  return static_cast<std::size_t>(
      std::lower_bound(sample.begin(), sample.end(), threshold) -
      sample.begin());
}

ViolinSummary violin(std::span<const double> data, std::size_t grid_points) {
  ViolinSummary v;
  v.stats = summarize(data);
  v.sample.assign(data.begin(), data.end());
  std::sort(v.sample.begin(), v.sample.end());
  const double iqr = v.stats.iqr();
  v.whisker_lo = std::max(v.stats.min, v.stats.q1 - 1.5 * iqr);
  v.whisker_hi = std::min(v.stats.max, v.stats.q3 + 1.5 * iqr);
  v.curve = kde(data, grid_points);
  return v;
}

std::string render_table(const ViolinGroup& group, double threshold) {
  std::string out = group.title + "\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-24s %6s %7s %7s %7s %7s %7s %7s %8s\n",
                "category", "n", "mean", "median", "q1", "q3", "w_lo", "w_hi",
                "%below");
  out += line;
  for (std::size_t i = 0; i < group.violins.size(); ++i) {
    const auto& v = group.violins[i];
    const double pct =
        v.stats.count == 0
            ? 0.0
            : 100.0 * static_cast<double>(v.below(threshold)) /
                  static_cast<double>(v.stats.count);
    std::snprintf(line, sizeof line,
                  "%-24s %6zu %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %7.1f%%\n",
                  i < group.labels.size() ? group.labels[i].c_str() : "?",
                  v.stats.count, v.stats.mean, v.stats.median, v.stats.q1,
                  v.stats.q3, v.whisker_lo, v.whisker_hi, pct);
    out += line;
  }
  return out;
}

}  // namespace atlarge::stats
