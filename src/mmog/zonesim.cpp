#include "atlarge/mmog/zonesim.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "atlarge/fault/fault.hpp"
#include "atlarge/fault/injector.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::mmog {
namespace detail {

constexpr std::uint64_t kAvatarMix = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kSpikeMix = 0xc2b2ae3d27d4eb4fULL;

/// Everything an avatar is: travels with it across LPs inside the
/// migration message.
struct AvatarState {
  std::uint64_t id = 0;
  double spawn = 0.0;
  double session_end = 0.0;
  stats::Rng rng{0};
};

struct Zone {
  std::unordered_map<std::uint64_t, AvatarState> residents;
  std::uint64_t actions = 0;
  std::uint64_t migrations = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t churned = 0;
  std::uint64_t spikes_seen = 0;  // per-zone spike ordinal (layout-stable)
  obs::Digest sessions;
  std::uint64_t session_us = 0;
  /// Login capacity (eco autoscale binding); unlimited by default, which
  /// makes the full-zone branch unreachable.
  std::size_t capacity = std::numeric_limits<std::size_t>::max();
  std::deque<AvatarState> login_queue;  // FIFO, admitted as slots free up
  std::uint64_t queued_logins = 0;
};

// All mutable state is partitioned by zone, and a zone is touched only by
// the lane currently running its LP — the engine needs no locks.
struct ZoneEngine {
  const ZoneSimConfig* config = nullptr;
  sim::ShardedSimulation* sharded = nullptr;
  std::vector<Zone> zones;
  std::size_t lp_base = 0;  // zones live on LPs [lp_base, lp_base+lp_count)
  std::size_t lp_count = 1;

  std::size_t lp_of(std::size_t zone) const noexcept {
    return lp_base + zone % lp_count;
  }

  void depart(Zone& z, AvatarState& a, double now) {
    ++z.departures;
    const double session = now - a.spawn;
    z.sessions.add(session);
    z.session_us += static_cast<std::uint64_t>(session * 1e6 + 0.5);
  }

  void schedule_act(std::size_t zone, std::uint64_t avatar, double at) {
    sharded->lp(lp_of(zone)).schedule_at(
        at, [this, zone, avatar] { act(zone, avatar); });
  }

  /// A login (spawn or completed crossing) reaches the zone: admitted
  /// immediately unless the zone is at capacity, in which case it waits
  /// in the FIFO login queue.
  void arrive(std::size_t zone, AvatarState state, double now) {
    Zone& z = zones[zone];
    if (z.residents.size() >= z.capacity) {
      ++z.queued_logins;
      z.login_queue.push_back(std::move(state));
      return;
    }
    admit(z, zone, std::move(state), now);
  }

  void admit(Zone& z, std::size_t zone, AvatarState state, double now) {
    const double gap = state.rng.exponential(1.0 / config->act_mean);
    const std::uint64_t id = state.id;
    z.residents.emplace(id, std::move(state));
    schedule_act(zone, id, now + gap);
  }

  /// Admits queued logins into freed slots (no-op while the queue is
  /// empty, i.e. always without capacity caps).
  void drain_queue(std::size_t zone, double now) {
    Zone& z = zones[zone];
    while (!z.login_queue.empty() && z.residents.size() < z.capacity) {
      AvatarState state = std::move(z.login_queue.front());
      z.login_queue.pop_front();
      admit(z, zone, std::move(state), now);
    }
  }

  void cross(std::size_t zone, AvatarState state, double now) {
    ++zones[zone].arrivals;
    arrive(zone, std::move(state), now);
  }

  void act(std::size_t zone, std::uint64_t avatar) {
    Zone& z = zones[zone];
    const auto it = z.residents.find(avatar);
    if (it == z.residents.end()) return;  // kicked by a churn spike
    AvatarState& a = it->second;
    const double now = sharded->lp(lp_of(zone)).now();
    if (now >= a.session_end) {
      depart(z, a, now);
      z.residents.erase(it);
      drain_queue(zone, now);
      return;
    }
    ++z.actions;
    if (a.rng.bernoulli(config->migrate_prob) && config->zones > 1) {
      const std::size_t dst =
          a.rng.bernoulli(0.5) ? (zone + 1) % config->zones
                               : (zone + config->zones - 1) % config->zones;
      ++z.migrations;
      AvatarState moved = std::move(a);
      z.residents.erase(it);
      // The border crossing IS the lookahead: arrival lands one
      // crossing_time ahead, outside the current window.
      sharded->send(lp_of(zone), lp_of(dst), now + config->crossing_time,
                    moved.id,
                    [this, dst, state = std::move(moved)]() mutable {
                      cross(dst, std::move(state),
                            sharded->lp(lp_of(dst)).now());
                    });
      drain_queue(zone, now);
      return;
    }
    schedule_act(zone, avatar, now + a.rng.exponential(1.0 / config->act_mean));
  }

  void spawn(std::size_t zone, std::uint64_t avatar, double now) {
    AvatarState a;
    a.id = avatar;
    a.spawn = now;
    a.rng = stats::Rng(config->seed ^ (avatar * kAvatarMix));
    a.session_end = now + a.rng.exponential(1.0 / config->session_mean);
    arrive(zone, std::move(a), now);  // spawning is not a border crossing
  }

  // Churn spike on one zone: each resident is kicked by an independent
  // per-avatar hash draw, so the kicked set does not depend on map
  // iteration order or shard layout.
  void churn(std::size_t zone, double magnitude) {
    Zone& z = zones[zone];
    const std::uint64_t spike = z.spikes_seen++;
    const std::uint64_t base = config->seed ^
                               (static_cast<std::uint64_t>(zone) << 32 | spike)
                                   * kSpikeMix;
    for (auto it = z.residents.begin(); it != z.residents.end();) {
      stats::Rng draw(base ^ (it->first * kAvatarMix));
      if (draw.uniform() < magnitude) {
        ++z.churned;
        it = z.residents.erase(it);
      } else {
        ++it;
      }
    }
    drain_queue(zone, sharded->lp(lp_of(zone)).now());
  }
};

}  // namespace detail

std::vector<ZoneArrival> synthetic_zone_arrivals(std::size_t avatars,
                                                 std::size_t zones,
                                                 double spawn_window,
                                                 std::uint64_t seed) {
  std::vector<ZoneArrival> arrivals;
  arrivals.reserve(avatars);
  for (std::size_t i = 0; i < avatars; ++i) {
    stats::Rng rng(seed ^
                   (static_cast<std::uint64_t>(i + 1) * detail::kAvatarMix));
    ZoneArrival a;
    a.avatar = static_cast<std::uint64_t>(i);
    a.time = rng.uniform(0.0, spawn_window);
    a.zone = static_cast<std::uint32_t>(i % std::max<std::size_t>(1, zones));
    arrivals.push_back(a);
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const ZoneArrival& x, const ZoneArrival& y) {
              return x.time != y.time ? x.time < y.time : x.avatar < y.avatar;
            });
  return arrivals;
}

ZoneWorld::ZoneWorld(const ZoneSimConfig& config,
                     const std::vector<ZoneArrival>& arrivals,
                     sim::ShardedSimulation& sharded, std::size_t lp_base,
                     std::size_t lp_count)
    : engine_(std::make_unique<detail::ZoneEngine>()) {
  assert(lp_count >= 1 && lp_base + lp_count <= sharded.shards());
  engine_->config = &config;
  engine_->sharded = &sharded;
  engine_->zones.resize(std::max<std::size_t>(1, config.zones));
  engine_->lp_base = lp_base;
  engine_->lp_count = std::max<std::size_t>(
      1, std::min(lp_count, engine_->zones.size()));
  arrivals_ = &arrivals;
}

ZoneWorld::~ZoneWorld() = default;

void ZoneWorld::prepare() {
  detail::ZoneEngine& engine = *engine_;
  const ZoneSimConfig& config = *engine.config;
  sim::ShardedSimulation& sharded = *engine.sharded;

  // Per-LP injectors over the shared plan, attached before any avatar is
  // scheduled: injection events then carry the earliest sequence numbers
  // on every LP, so at tied timestamps a spike precedes the activity it
  // preempts regardless of layout. Each injector handles only the zones
  // its LP hosts.
  if (config.faults != nullptr && !config.faults->empty()) {
    injectors_.reserve(engine.lp_count);
    for (std::size_t l = engine.lp_base;
         l < engine.lp_base + engine.lp_count; ++l) {
      auto injector =
          std::make_unique<fault::Injector>(*config.faults, nullptr);
      injector->on_kind(
          fault::FaultKind::kChurnSpike,
          [&engine, l](const fault::FaultEvent& e) {
            const std::size_t zone = e.target % engine.zones.size();
            if (engine.lp_of(zone) != l) return;  // not hosted here
            engine.churn(zone, e.magnitude);
          });
      sharded.lp(l).set_fault_hook(injector.get());
      injectors_.push_back(std::move(injector));
    }
  }

  // Seed the world through the same sorted-mailbox path as every other
  // cross-LP message: spawn order is then (time, avatar) on every layout.
  for (const ZoneArrival& a : *arrivals_) {
    const std::size_t zone = a.zone % engine.zones.size();
    const std::uint64_t avatar = a.avatar;
    const double at = a.time;
    sharded.send(engine.lp_of(zone), engine.lp_of(zone), at, avatar,
                 [&engine, zone, avatar, at] { engine.spawn(zone, avatar, at); });
  }
}

std::size_t ZoneWorld::lp_of(std::size_t zone) const {
  return engine_->lp_of(zone);
}

std::size_t ZoneWorld::population(std::size_t zone) const {
  return engine_->zones[zone].residents.size();
}

std::size_t ZoneWorld::queue_length(std::size_t zone) const {
  return engine_->zones[zone].login_queue.size();
}

void ZoneWorld::set_capacity(std::size_t zone, std::uint32_t capacity) {
  detail::ZoneEngine& engine = *engine_;
  engine.zones[zone].capacity = capacity;
  engine.drain_queue(zone, engine.sharded->lp(engine.lp_of(zone)).now());
}

ZoneSimResult ZoneWorld::collect() const {
  const detail::ZoneEngine& engine = *engine_;
  ZoneSimResult result;
  result.zone_actions.reserve(engine.zones.size());
  result.final_population.reserve(engine.zones.size());
  for (const detail::Zone& z : engine.zones) {
    result.actions += z.actions;
    result.migrations += z.migrations;
    result.arrivals += z.arrivals;
    result.departures += z.departures;
    result.churned += z.churned;
    result.residents += z.residents.size();
    result.zone_actions.push_back(z.actions);
    result.final_population.push_back(
        static_cast<std::uint32_t>(z.residents.size()));
    result.session_digest.merge(z.sessions);
    result.session_seconds_x1e6 += z.session_us;
    result.queued_logins += z.queued_logins;
  }
  return result;
}

ZoneSimResult simulate_zones(const ZoneSimConfig& config,
                             const std::vector<ZoneArrival>& arrivals) {
  sim::ShardOptions shard = config.shard;
  shard.shards = std::min(std::max<std::size_t>(1, shard.shards),
                          std::max<std::size_t>(1, config.zones));
  shard.lookahead = config.crossing_time;  // derived, not user-set
  sim::ShardedSimulation sharded(shard);

  obs::Observability* const plane = config.obs;
  if (plane != nullptr) plane->tracer.begin("mmog.zonesim", "mmog", 0.0);

  ZoneWorld world(config, arrivals, sharded, 0, sharded.shards());
  world.prepare();

  sharded.run_until(config.horizon);

  ZoneSimResult result = world.collect();
  result.windows = sharded.windows();
  result.messages = sharded.messages();

  if (plane != nullptr) {
    plane->metrics.counter("mmog.actions").add(result.actions);
    plane->metrics.counter("mmog.migrations").add(result.migrations);
    plane->metrics.counter("mmog.departures").add(result.departures);
    plane->metrics.counter("mmog.churn_kicked").add(result.churned);
    plane->metrics.gauge("mmog.residents")
        .set(static_cast<double>(result.residents));
    // Per-LP spans, merged in LP-id order (the obs boundary rule for
    // sharded runs: lane timing never dictates trace order).
    for (std::size_t l = 0; l < sharded.shards(); ++l) {
      plane->tracer.begin("mmog.zonesim.lp", "mmog", 0.0);
      plane->tracer.end("mmog.zonesim.lp", "mmog", config.horizon);
    }
    plane->tracer.end("mmog.zonesim", "mmog", config.horizon);
  }
  return result;
}

}  // namespace atlarge::mmog
