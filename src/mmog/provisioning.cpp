#include "atlarge/mmog/provisioning.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace atlarge::mmog {

std::string to_string(Predictor p) {
  switch (p) {
    case Predictor::kLastValue: return "last-value";
    case Predictor::kMovingAverage: return "moving-average";
    case Predictor::kExponential: return "exp-smoothing";
    case Predictor::kLinearTrend: return "linear-trend";
  }
  return "?";
}

namespace {

class LoadPredictor {
 public:
  LoadPredictor(const ProvisioningConfig& config) : config_(config) {}

  double predict(double now, double current) {
    history_.emplace_back(now, current);
    while (history_.size() > config_.window) history_.pop_front();
    switch (config_.predictor) {
      case Predictor::kLastValue:
        return current;
      case Predictor::kMovingAverage: {
        double total = 0.0;
        for (const auto& [t, v] : history_) total += v;
        return total / static_cast<double>(history_.size());
      }
      case Predictor::kExponential: {
        if (!smoothed_init_) {
          smoothed_ = current;
          smoothed_init_ = true;
        } else {
          smoothed_ = config_.smoothing * current +
                      (1.0 - config_.smoothing) * smoothed_;
        }
        return smoothed_;
      }
      case Predictor::kLinearTrend: {
        if (history_.size() < 2) return current;
        const double n = static_cast<double>(history_.size());
        double st = 0.0;
        double sv = 0.0;
        double stt = 0.0;
        double stv = 0.0;
        for (const auto& [t, v] : history_) {
          st += t;
          sv += v;
          stt += t * t;
          stv += t * v;
        }
        const double denom = n * stt - st * st;
        if (denom == 0.0) return current;
        const double slope = (n * stv - st * sv) / denom;
        const double intercept = (sv - slope * st) / n;
        const double step =
            history_.back().first - history_[history_.size() - 2].first;
        // Predict one provisioning delay ahead: the capacity requested now
        // arrives then.
        return std::max(
            0.0, intercept + slope * (now + std::max(step,
                                                     config_.provisioning_delay)));
      }
    }
    return current;
  }

 private:
  const ProvisioningConfig& config_;
  std::deque<std::pair<double, double>> history_;
  double smoothed_ = 0.0;
  bool smoothed_init_ = false;
};

}  // namespace

ProvisioningResult provision_dynamic(const PopulationSeries& series,
                                     const ProvisioningConfig& config) {
  ProvisioningResult result;
  result.predictor = to_string(config.predictor);
  if (series.points.empty()) return result;

  LoadPredictor predictor(config);
  double capacity = config.min_servers;       // usable now
  std::deque<std::pair<double, double>> arriving;  // (ready_time, servers)

  double violation_time = 0.0;
  double over_integral = 0.0;
  double server_integral = 0.0;
  double total_time = 0.0;

  for (std::size_t i = 0; i < series.points.size(); ++i) {
    const auto& pt = series.points[i];
    const double next_time = i + 1 < series.points.size()
                                 ? series.points[i + 1].time
                                 : pt.time;
    const double dt = std::max(next_time - pt.time, 0.0);

    // Deliver capacity whose provisioning delay has elapsed.
    while (!arriving.empty() && arriving.front().first <= pt.time) {
      capacity += arriving.front().second;
      arriving.pop_front();
    }

    const double predicted = predictor.predict(pt.time, pt.players);
    const double target = std::clamp(
        std::ceil(predicted * config.headroom / config.players_per_server),
        static_cast<double>(config.min_servers),
        static_cast<double>(config.max_servers));
    double committed = capacity;
    for (const auto& [t, s] : arriving) committed += s;
    if (target > committed) {
      arriving.emplace_back(pt.time + config.provisioning_delay,
                            target - committed);
    } else if (target < capacity) {
      capacity = std::max(target, static_cast<double>(config.min_servers));
    }

    const double demand_servers = pt.players / config.players_per_server;
    if (capacity < demand_servers) violation_time += dt;
    over_integral += std::max(capacity - demand_servers, 0.0) * dt;
    server_integral += capacity * dt;
    result.peak_servers = std::max(result.peak_servers, capacity);
    total_time += dt;
  }

  if (total_time > 0.0) {
    result.sla_violation_share = violation_time / total_time;
    result.avg_overprovision = over_integral / total_time;
    result.avg_servers = server_integral / total_time;
    result.server_hours = server_integral / 3600.0;
  }
  return result;
}

ProvisioningResult provision_static(const PopulationSeries& series,
                                    const ProvisioningConfig& config) {
  ProvisioningResult result;
  result.predictor = "static-peak";
  if (series.points.empty()) return result;
  const double capacity = std::clamp(
      std::ceil(series.peak() * config.headroom / config.players_per_server),
      static_cast<double>(config.min_servers),
      static_cast<double>(config.max_servers));
  double over_integral = 0.0;
  double total_time = 0.0;
  for (std::size_t i = 0; i + 1 < series.points.size(); ++i) {
    const double dt = series.points[i + 1].time - series.points[i].time;
    const double demand =
        series.points[i].players / config.players_per_server;
    over_integral += std::max(capacity - demand, 0.0) * dt;
    total_time += dt;
  }
  result.avg_servers = capacity;
  result.peak_servers = capacity;
  result.sla_violation_share = 0.0;
  if (total_time > 0.0) {
    result.avg_overprovision = over_integral / total_time;
    result.server_hours = capacity * total_time / 3600.0;
  }
  return result;
}

}  // namespace atlarge::mmog
