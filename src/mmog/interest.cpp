#include "atlarge/mmog/interest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atlarge::mmog {

std::string to_string(ImTechnique t) {
  switch (t) {
    case ImTechnique::kZoning: return "zoning";
    case ImTechnique::kFullReplication: return "full-replication";
    case ImTechnique::kAreaOfSimulation: return "area-of-simulation";
  }
  return "?";
}

World generate_world(const WorldConfig& config) {
  World world;
  world.config = config;
  stats::Rng rng(config.seed);
  world.hotspots.reserve(config.hotspots);
  for (std::size_t h = 0; h < config.hotspots; ++h) {
    world.hotspots.emplace_back(rng.uniform(0.0, config.size),
                                rng.uniform(0.0, config.size));
  }
  world.entities.reserve(config.entities);
  for (std::size_t i = 0; i < config.entities; ++i) {
    Entity e;
    if (!world.hotspots.empty() && rng.bernoulli(config.hotspot_fraction)) {
      const auto& [hx, hy] = world.hotspots[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(world.hotspots.size()) -
                              1))];
      e.x = std::clamp(hx + rng.normal(0.0, config.hotspot_sigma), 0.0,
                       config.size);
      e.y = std::clamp(hy + rng.normal(0.0, config.hotspot_sigma), 0.0,
                       config.size);
      e.in_hotspot = true;
    } else {
      e.x = rng.uniform(0.0, config.size);
      e.y = rng.uniform(0.0, config.size);
    }
    world.entities.push_back(e);
  }
  return world;
}

namespace {

double pair_cost(std::size_t n, double cost_per_pair) {
  const double dn = static_cast<double>(n);
  return cost_per_pair * dn * (dn - 1.0) / 2.0;
}

ImReport finalize(std::string technique, std::vector<double> server_costs,
                  double sync, const ImConfig& config) {
  ImReport report;
  report.technique = std::move(technique);
  report.sync_overhead = sync;
  if (server_costs.empty()) return report;
  const double total =
      std::accumulate(server_costs.begin(), server_costs.end(), 0.0);
  const double busiest =
      *std::max_element(server_costs.begin(), server_costs.end());
  const double mean = total / static_cast<double>(server_costs.size());
  report.total_cost = total + sync;
  report.busiest_server_cost = busiest + sync / static_cast<double>(
                                             server_costs.size());
  report.imbalance = mean > 0.0 ? busiest / mean : 0.0;
  report.playable = report.busiest_server_cost <= config.tick_budget;
  return report;
}

}  // namespace

ImReport evaluate_interest_management(ImTechnique technique,
                                      const World& world,
                                      const ImConfig& config) {
  const std::size_t servers = std::max<std::size_t>(config.servers, 1);

  switch (technique) {
    case ImTechnique::kZoning: {
      // Static grid; zones assigned round-robin to servers.
      const std::size_t grid = std::max<std::size_t>(config.zone_grid, 1);
      const double cell = world.config.size / static_cast<double>(grid);
      std::vector<std::size_t> zone_counts(grid * grid, 0);
      for (const auto& e : world.entities) {
        const auto zx = std::min(static_cast<std::size_t>(e.x / cell),
                                 grid - 1);
        const auto zy = std::min(static_cast<std::size_t>(e.y / cell),
                                 grid - 1);
        ++zone_counts[zy * grid + zx];
      }
      std::vector<double> server_costs(servers, 0.0);
      for (std::size_t z = 0; z < zone_counts.size(); ++z) {
        const double cost =
            config.cost_per_entity * static_cast<double>(zone_counts[z]) +
            pair_cost(zone_counts[z], config.cost_per_pair);
        server_costs[z % servers] += cost;
      }
      // Zone-border consistency: entities near borders sync to neighbors;
      // approximate with a fixed fraction of entities.
      const double sync = config.sync_cost_per_entity * 0.1 *
                          static_cast<double>(world.entities.size());
      return finalize(to_string(technique), std::move(server_costs), sync,
                      config);
    }

    case ImTechnique::kFullReplication: {
      // Every server simulates the whole world; inputs are broadcast.
      const std::size_t n = world.entities.size();
      const double per_server = config.cost_per_entity *
                                    static_cast<double>(n) +
                                pair_cost(n, config.cost_per_pair);
      std::vector<double> server_costs(servers, per_server);
      const double sync = config.sync_cost_per_entity *
                          static_cast<double>(n) *
                          static_cast<double>(servers);
      return finalize(to_string(technique), std::move(server_costs), sync,
                      config);
    }

    case ImTechnique::kAreaOfSimulation: {
      // Full-fidelity areas around hotspots; casual simulation elsewhere.
      const double r2 = config.aos_radius * config.aos_radius;
      std::vector<std::size_t> area_counts(world.hotspots.size(), 0);
      std::size_t outside = 0;
      for (const auto& e : world.entities) {
        bool in_area = false;
        for (std::size_t h = 0; h < world.hotspots.size(); ++h) {
          const double dx = e.x - world.hotspots[h].first;
          const double dy = e.y - world.hotspots[h].second;
          if (dx * dx + dy * dy <= r2) {
            ++area_counts[h];
            in_area = true;
            break;  // an entity belongs to its nearest-hit area
          }
        }
        if (!in_area) ++outside;
      }
      // Greedy balanced assignment of areas to servers (largest first).
      std::vector<double> area_costs;
      area_costs.reserve(area_counts.size());
      for (std::size_t n : area_counts) {
        area_costs.push_back(config.cost_per_entity * static_cast<double>(n) +
                             pair_cost(n, config.cost_per_pair));
      }
      std::sort(area_costs.rbegin(), area_costs.rend());
      std::vector<double> server_costs(servers, 0.0);
      for (double cost : area_costs) {
        auto it = std::min_element(server_costs.begin(), server_costs.end());
        *it += cost;
      }
      // Outside-area entities are casually simulated, spread evenly.
      const double casual =
          config.cost_per_entity * static_cast<double>(outside) /
          static_cast<double>(servers);
      for (auto& c : server_costs) c += casual;
      // Consistency: area state is replicated to interested servers.
      double in_areas = 0.0;
      for (std::size_t n : area_counts) in_areas += static_cast<double>(n);
      const double sync = config.sync_cost_per_entity * in_areas;
      return finalize(to_string(technique), std::move(server_costs), sync,
                      config);
    }
  }
  return ImReport{};
}

std::size_t max_sustainable_entities(
    ImTechnique technique, const WorldConfig& world_template,
    const ImConfig& config, const std::vector<std::size_t>& candidates) {
  std::size_t best = 0;
  for (std::size_t n : candidates) {
    WorldConfig wc = world_template;
    wc.entities = n;
    const World world = generate_world(wc);
    const ImReport report =
        evaluate_interest_management(technique, world, config);
    if (report.playable) best = n;
  }
  return best;
}

}  // namespace atlarge::mmog
