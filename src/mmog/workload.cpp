#include "atlarge/mmog/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace atlarge::mmog {

std::string to_string(Genre g) {
  switch (g) {
    case Genre::kMmorpg: return "MMORPG";
    case Genre::kMoba: return "MOBA";
    case Genre::kOnlineSocial: return "OnlineSocial";
  }
  return "?";
}

double PopulationSeries::peak() const noexcept {
  double p = 0.0;
  for (const auto& pt : points) p = std::max(p, pt.players);
  return p;
}

double PopulationSeries::mean() const noexcept {
  if (points.empty()) return 0.0;
  double total = 0.0;
  for (const auto& pt : points) total += pt.players;
  return total / static_cast<double>(points.size());
}

double PopulationSeries::peak_to_mean() const noexcept {
  const double m = mean();
  return m > 0.0 ? peak() / m : 0.0;
}

PopulationSeries generate_population(const PopulationConfig& config) {
  PopulationSeries series;
  series.genre = config.genre;
  stats::Rng rng(config.seed);

  // Genre-specific shape parameters.
  double diurnal = config.diurnal_amplitude;
  double burst_noise = config.noise;
  switch (config.genre) {
    case Genre::kMmorpg:
      break;  // defaults: strong diurnal, modest noise
    case Genre::kMoba:
      diurnal *= 0.8;
      burst_noise *= 3.0;  // match-based populations are bursty
      break;
    case Genre::kOnlineSocial:
      diurnal *= 0.4;      // flatter profile, global audience
      burst_noise *= 1.5;
      break;
  }

  const double horizon = config.days * 86'400.0;
  constexpr double kDay = 86'400.0;
  for (double t = 0.0; t < horizon; t += config.step) {
    // Diurnal cycle peaking at 20:00 (phase shift of 5/6 day).
    const double daily =
        1.0 + diurnal * std::sin(2.0 * std::numbers::pi *
                                 (t / kDay - 5.0 / 6.0));
    // Weekend lift on days 5-6 of each week.
    const int day_of_week = static_cast<int>(t / kDay) % 7;
    const double weekly =
        (day_of_week >= 5) ? 1.0 + config.weekend_boost : 1.0;
    // Content-update surges with one-day half-life.
    double surge = 0.0;
    for (double ut : config.update_times) {
      if (t >= ut)
        surge += config.update_boost * std::exp2(-(t - ut) / kDay);
    }
    const double noise = std::max(0.0, 1.0 + rng.normal(0.0, burst_noise));
    const double players =
        config.base_players * daily * weekly * (1.0 + surge) * noise;
    series.points.push_back(PopulationPoint{t, std::max(players, 0.0)});
  }
  return series;
}

}  // namespace atlarge::mmog
