#include "atlarge/mmog/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atlarge::mmog {

MatchLog generate_match_log(const MatchLogConfig& config) {
  MatchLog log;
  log.config = config;
  stats::Rng rng(config.seed);

  log.community.resize(config.players);
  log.skill.resize(config.players);
  log.toxic.resize(config.players);
  for (std::size_t p = 0; p < config.players; ++p) {
    log.community[p] = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.communities) - 1));
    log.skill[p] = rng.normal(25.0, 8.0);
    log.toxic[p] = rng.bernoulli(config.toxic_fraction);
  }

  // Players per community, for in-community sampling.
  std::vector<std::vector<PlayerId>> members(config.communities);
  for (std::size_t p = 0; p < config.players; ++p)
    members[log.community[p]].push_back(static_cast<PlayerId>(p));

  log.matches.reserve(config.matches);
  for (std::size_t m = 0; m < config.matches; ++m) {
    MatchRecord match;
    match.time = static_cast<double>(m);
    const auto size = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.group_min),
                        static_cast<std::int64_t>(config.group_max)));
    const bool in_community = rng.bernoulli(config.in_community_prob);
    const auto anchor = static_cast<PlayerId>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.players) - 1));
    match.players.push_back(anchor);
    const auto& pool =
        in_community && members[log.community[anchor]].size() >= size
            ? members[log.community[anchor]]
            : std::vector<PlayerId>{};
    while (match.players.size() < size) {
      PlayerId candidate;
      if (!pool.empty()) {
        candidate = pool[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool.size()) - 1))];
      } else {
        candidate = static_cast<PlayerId>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.players) - 1));
      }
      if (std::find(match.players.begin(), match.players.end(), candidate) ==
          match.players.end())
        match.players.push_back(candidate);
    }
    log.matches.push_back(std::move(match));
  }
  return log;
}

SocialGraph::SocialGraph(std::size_t players) : adjacency_(players) {}

SocialGraph SocialGraph::from_matches(
    std::size_t players, const std::vector<MatchRecord>& matches) {
  SocialGraph graph(players);
  for (const auto& m : matches) {
    for (std::size_t i = 0; i < m.players.size(); ++i) {
      for (std::size_t j = i + 1; j < m.players.size(); ++j) {
        graph.add_edge(m.players[i], m.players[j]);
      }
    }
  }
  return graph;
}

std::size_t SocialGraph::edges() const noexcept {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

void SocialGraph::add_edge(PlayerId a, PlayerId b, double weight) {
  if (a == b || a >= adjacency_.size() || b >= adjacency_.size()) return;
  const auto bump = [&](PlayerId u, PlayerId v) {
    for (auto& [other, w] : adjacency_[u]) {
      if (other == v) {
        w += weight;
        return;
      }
    }
    adjacency_[u].emplace_back(v, weight);
  };
  bump(a, b);
  bump(b, a);
}

double SocialGraph::edge_weight(PlayerId a, PlayerId b) const {
  if (a >= adjacency_.size()) return 0.0;
  for (const auto& [other, w] : adjacency_[a])
    if (other == b) return w;
  return 0.0;
}

std::vector<double> SocialGraph::degrees() const {
  std::vector<double> out;
  out.reserve(adjacency_.size());
  for (const auto& adj : adjacency_)
    out.push_back(static_cast<double>(adj.size()));
  return out;
}

double SocialGraph::clustering_coefficient() const {
  // Transitivity: 3 * triangles / open+closed triplets.
  std::size_t closed = 0;
  std::size_t triplets = 0;
  for (PlayerId u = 0; u < adjacency_.size(); ++u) {
    const auto& adj = adjacency_[u];
    const std::size_t d = adj.size();
    if (d < 2) continue;
    triplets += d * (d - 1) / 2;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (edge_weight(adj[i].first, adj[j].first) > 0.0) ++closed;
      }
    }
  }
  return triplets == 0 ? 0.0
                       : static_cast<double>(closed) /
                             static_cast<double>(triplets);
}

std::vector<std::size_t> SocialGraph::component_sizes() const {
  // Union-find.
  std::vector<std::size_t> parent(adjacency_.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (PlayerId u = 0; u < adjacency_.size(); ++u) {
    for (const auto& [v, w] : adjacency_[u]) {
      const auto ru = find(u);
      const auto rv = find(v);
      if (ru != rv) parent[ru] = rv;
    }
  }
  std::vector<std::size_t> count(adjacency_.size(), 0);
  for (std::size_t u = 0; u < adjacency_.size(); ++u) ++count[find(u)];
  std::vector<std::size_t> sizes;
  for (std::size_t c : count)
    if (c > 0) sizes.push_back(c);
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

double SocialGraph::community_cohesion(
    const std::vector<std::uint32_t>& labels) const {
  double internal = 0.0;
  double total = 0.0;
  for (PlayerId u = 0; u < adjacency_.size(); ++u) {
    for (const auto& [v, w] : adjacency_[u]) {
      total += w;
      if (u < labels.size() && v < labels.size() && labels[u] == labels[v])
        internal += w;
    }
  }
  return total > 0.0 ? internal / total : 0.0;
}

double matchmaking_skill_gap(const MatchLog& log, bool skill_based,
                             std::size_t rounds, std::uint64_t seed) {
  stats::Rng rng(seed);
  const std::size_t n = log.skill.size();
  if (n < 2 || rounds == 0) return 0.0;
  double gap_sum = 0.0;
  if (skill_based) {
    // Greedy pairing by skill order; each round pairs a random contiguous
    // window of the skill-sorted lobby (matchmaking pools are local).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return log.skill[a] < log.skill[b];
    });
    for (std::size_t r = 0; r < rounds; ++r) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      gap_sum +=
          std::abs(log.skill[order[i]] - log.skill[order[i + 1]]);
    }
  } else {
    for (std::size_t r = 0; r < rounds; ++r) {
      const auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (b == a) b = (b + 1) % n;
      gap_sum += std::abs(log.skill[a] - log.skill[b]);
    }
  }
  return gap_sum / static_cast<double>(rounds);
}

ToxicityOutcome detect_toxicity(const MatchLog& log, double threshold,
                                std::size_t samples_per_player,
                                std::uint64_t seed) {
  stats::Rng rng(seed);
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  for (std::size_t p = 0; p < log.toxic.size(); ++p) {
    // Toxic players emit messages with mean score 0.6, others 0.2; both
    // with heavy noise — the signal is only visible in aggregate.
    const double mean = log.toxic[p] ? 0.6 : 0.2;
    double observed = 0.0;
    for (std::size_t s = 0; s < samples_per_player; ++s)
      observed += std::clamp(rng.normal(mean, 0.25), 0.0, 1.0);
    observed /= static_cast<double>(std::max<std::size_t>(
        samples_per_player, 1));
    const bool flagged = observed > threshold;
    if (flagged && log.toxic[p]) ++tp;
    if (flagged && !log.toxic[p]) ++fp;
    if (!flagged && log.toxic[p]) ++fn;
  }
  ToxicityOutcome out;
  if (tp + fp > 0)
    out.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  if (tp + fn > 0)
    out.recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  if (out.precision + out.recall > 0.0)
    out.f1 = 2.0 * out.precision * out.recall /
             (out.precision + out.recall);
  return out;
}

}  // namespace atlarge::mmog
