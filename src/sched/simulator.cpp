#include "atlarge/sched/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "atlarge/fault/injector.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/descriptive.hpp"

namespace atlarge::sched {

double JobStats::slowdown() const noexcept {
  if (critical_path <= 0.0) return 1.0;
  return std::max(1.0, response() / critical_path);
}

namespace detail {

enum class TaskStatus : std::uint8_t { kPending, kEligible, kRunning, kDone };

struct TaskState {
  TaskStatus status = TaskStatus::kPending;
  std::uint32_t remaining_deps = 0;
  double eligible_time = 0.0;
};

struct JobState {
  const workflow::Job* job = nullptr;
  std::vector<TaskState> tasks;
  std::size_t remaining = 0;
  double start = -1.0;
  double finish = -1.0;
  bool arrived = false;
};

struct MachineState {
  std::uint32_t total = 0;
  std::uint32_t free = 0;
  double speed = 1.0;
  std::uint32_t cluster = 0;
  double base_speed = 1.0;   // speed to restore after a slowdown heals
  double slow_until = 0.0;   // end of the widest slowdown window
  bool down = false;         // crashed, awaiting restart
};

struct RunningTask {
  double finish = 0.0;
  std::uint32_t machine = 0;
  std::uint32_t cores = 0;
  std::size_t ji = 0;
  std::size_t ti = 0;
  std::uint64_t place_seq = 0;  // flight-recorder causal link
  sim::EventHandle completion;
};

class SchedEngine {
 public:
  SchedEngine(const cluster::Environment& env,
              const workflow::Workload& workload, Policy& policy,
              const SimOptions& options, sim::Simulation* external = nullptr)
      : env_(env),
        policy_(policy),
        options_(options),
        obs_(options.obs),
        owned_(external != nullptr ? nullptr
                                   : std::make_unique<sim::Simulation>()),
        sim_(external != nullptr ? *external : *owned_),
        external_(external != nullptr) {
    if (obs_ != nullptr) {
      // A shared kernel's observer/sampling hooks belong to whoever owns
      // the kernel (the composition layer); attach only to an owned one.
      if (!external_) {
        sim_.set_observer(obs_->kernel_observer());
        if (obs_->sampling_hook() != nullptr)
          sim_.set_sampling_hook(obs_->sampling_hook(),
                                 obs_->sampling_interval());
      }
      passes_ = &obs_->metrics.counter("sched.passes");
      placed_ = &obs_->metrics.counter("sched.tasks_placed");
      queue_depth_ = &obs_->metrics.gauge("sched.eligible_queue");
      wait_hist_ = &obs_->metrics.histogram("sched.task_wait");
      wait_dig_ = &obs_->metrics.digest("sched.task_wait");
      flight_ = obs_->flight();
    }
    const auto machines = env.all_machines();
    if (machines.empty())
      throw std::invalid_argument("simulate: environment has no machines");
    std::uint32_t max_cores = 0;
    machines_.reserve(machines.size());
    for (const auto& m : machines) {
      MachineState ms;
      ms.total = m.cores;
      ms.free = m.cores;
      ms.speed = m.speed;
      ms.cluster = m.cluster;
      ms.base_speed = m.speed;
      machines_.push_back(ms);
      max_cores = std::max(max_cores, m.cores);
    }
    result_.machine_busy_seconds.assign(machines_.size(), 0.0);
    if (flight_ != nullptr) {
      flight_entity_.reserve(machines_.size());
      for (std::size_t mi = 0; mi < machines_.size(); ++mi)
        flight_entity_.push_back(
            flight_->entity("machine/" + std::to_string(mi)));
    }

    jobs_.reserve(workload.jobs.size());
    for (const auto& job : workload.jobs) {
      for (const auto& t : job.tasks) {
        if (t.cores > max_cores)
          throw std::invalid_argument(
              "simulate: task demands more cores than any machine offers");
      }
      JobState js;
      js.job = &job;
      js.remaining = job.tasks.size();
      js.tasks.resize(job.tasks.size());
      for (std::size_t ti = 0; ti < job.tasks.size(); ++ti)
        js.tasks[ti].remaining_deps =
            static_cast<std::uint32_t>(job.tasks[ti].deps.size());
      jobs_.push_back(std::move(js));
    }

    // Pre-size the kernel for the run's concurrent-event ceiling: one
    // arrival per job, at most one in-flight completion per task, one
    // pending scheduling pass, and two timers per fault event. A matched
    // reserve makes the steady state allocation-free (sim.alloc_events
    // stays 0 under the kernel observer; pinned by sched_test).
    std::size_t total_tasks = 0;
    for (const auto& job : workload.jobs) total_tasks += job.tasks.size();
    const std::size_t fault_events =
        options.faults != nullptr ? options.faults->events().size() : 0;
    sim_.reserve(workload.jobs.size() + total_tasks + 2 * fault_events + 8);
  }

  void prepare() {
    if (obs_ != nullptr)
      obs_->tracer.begin("sched.simulate", "sched", sim_.now());
    if (options_.faults != nullptr && !options_.faults->empty())
      attach_faults();
    for (std::size_t ji = 0; ji < jobs_.size(); ++ji) {
      sim_.schedule_at(jobs_[ji].job->submit_time,
                       [this, ji] { arrive(ji); });
    }
  }

  SchedResult collect() {
    finalize();
    if (obs_ != nullptr)
      obs_->tracer.end("sched.simulate", "sched", sim_.now());
    return std::move(result_);
  }

  SchedResult run() {
    prepare();
    sim_.run_until(options_.time_limit);
    return collect();
  }

  // ---- fabric seam ----------------------------------------------------

  std::size_t machine_count() const { return machines_.size(); }
  std::uint32_t free_cores_on(std::size_t mi) const {
    return machines_[mi].free;
  }
  std::uint32_t total_cores_on(std::size_t mi) const {
    return machines_[mi].total;
  }
  bool machine_is_down(std::size_t mi) const { return machines_[mi].down; }

  bool reserve_cores(std::size_t mi, std::uint32_t cores) {
    auto& m = machines_[mi];
    if (m.down || m.free < cores) return false;
    m.free -= cores;
    observe_busy();
    return true;
  }

  void release_cores(std::size_t mi, std::uint32_t cores) {
    auto& m = machines_[mi];
    m.free = std::min(m.total, m.free + cores);
    observe_busy();
    if (!eligible_.empty()) request_pass();
  }

  void fail_machine(std::size_t mi, double duration) {
    if (machines_[mi].down) return;
    kill_machine(mi, duration);
    sim_.schedule_after(duration, [this, mi] {
      machines_[mi].down = false;
      request_pass();
    });
    request_pass();
  }

 private:
  void attach_faults() {
    injector_.emplace(*options_.faults, obs_);
    injector_->on_kind(fault::FaultKind::kMachineCrash,
                       [this](const fault::FaultEvent& e) { crash(e); });
    injector_->on_kind(fault::FaultKind::kSlowdown,
                       [this](const fault::FaultEvent& e) { slow_down(e); });
    // Attached before arrivals are scheduled, so at equal timestamps an
    // injection fires before the arrival it could affect.
    sim_.set_fault_hook(&*injector_);
  }

  void crash(const fault::FaultEvent& e) {
    const std::size_t mi = e.target % machines_.size();
    if (machines_[mi].down) return;  // overlapping crash, already down
    kill_machine(mi, e.duration);
    sim_.schedule_after(e.duration, [this, mi, e] {
      machines_[mi].down = false;
      injector_->recovered(e, sim_.now());
      request_pass();
    });
    request_pass();
  }

  /// Shared crash body: marks the machine down and kills every task
  /// running on it — its completion is cancelled, its partial work is
  /// lost (busy seconds give back the un-run remainder), and it is
  /// re-queued to run from scratch. Recovery scheduling stays with the
  /// caller (injector path records recovered(), the fabric seam does not).
  void kill_machine(std::size_t mi, double duration) {
    auto& m = machines_[mi];
    m.down = true;
    std::uint64_t crash_seq = 0;
    if (flight_ != nullptr)
      crash_seq = flight_->record(flight_entity_[mi], sim_.now(), "crash",
                                  duration);
    for (auto it = running_.begin(); it != running_.end();) {
      if (it->machine != mi) {
        ++it;
        continue;
      }
      it->completion.cancel();
      result_.machine_busy_seconds[mi] -= it->finish - sim_.now();
      auto& js = jobs_[it->ji];
      js.tasks[it->ti].status = TaskStatus::kEligible;
      js.tasks[it->ti].eligible_time = sim_.now();
      eligible_.emplace_back(it->ji, it->ti);
      ++result_.tasks_requeued;
      if (flight_ != nullptr)
        flight_->record(flight_entity_[mi], sim_.now(), "requeue",
                        static_cast<double>(js.job->id), crash_seq);
      m.free += it->cores;
      it = running_.erase(it);
    }
    observe_busy();
  }

  void slow_down(const fault::FaultEvent& e) {
    const std::size_t mi = e.target % machines_.size();
    auto& m = machines_[mi];
    m.speed = m.base_speed * e.magnitude;
    m.slow_until = std::max(m.slow_until, e.time + e.duration);
    sim_.schedule_after(e.duration, [this, mi, e] {
      auto& machine = machines_[mi];
      // Heal only if no later (overlapping) slowdown extended the window.
      if (sim_.now() + 1e-12 < machine.slow_until) return;
      machine.speed = machine.base_speed;
      injector_->recovered(e, sim_.now());
    });
  }

  void arrive(std::size_t ji) {
    auto& js = jobs_[ji];
    js.arrived = true;
    for (std::size_t ti = 0; ti < js.tasks.size(); ++ti) {
      if (js.tasks[ti].remaining_deps == 0) {
        js.tasks[ti].status = TaskStatus::kEligible;
        js.tasks[ti].eligible_time = sim_.now();
        eligible_.emplace_back(ji, ti);
      }
    }
    request_pass();
  }

  void request_pass() {
    if (pass_pending_) return;
    pass_pending_ = true;
    sim_.schedule_after(0.0, [this] { pass(); });
  }

  std::uint32_t free_cores() const {
    std::uint32_t total = 0;
    for (const auto& m : machines_) total += m.free;
    return total;
  }

  std::uint32_t total_cores() const {
    std::uint32_t total = 0;
    for (const auto& m : machines_) total += m.total;
    return total;
  }

  SchedState make_state(std::size_t queued) const {
    SchedState s;
    s.now = sim_.now();
    s.total_cores = total_cores();
    s.free_cores = free_cores();
    s.running_tasks = running_.size();
    s.queued_tasks = queued;
    s.user_usage = &user_usage_;
    return s;
  }

  TaskRef make_ref(std::size_t ji, std::size_t ti) const {
    const auto& js = jobs_[ji];
    const auto& task = js.job->tasks[ti];
    TaskRef ref;
    ref.job_id = js.job->id;
    ref.task_id = static_cast<std::uint32_t>(ti);
    ref.runtime = task.runtime;
    ref.cores = task.cores;
    ref.submit_time = js.job->submit_time;
    ref.eligible_time = js.tasks[ti].eligible_time;
    ref.user = js.job->user;
    return ref;
  }

  /// Earliest time a machine can host `cores` given current running tasks.
  double compute_shadow(std::uint32_t cores) const {
    double shadow = std::numeric_limits<double>::infinity();
    for (std::size_t mi = 0; mi < machines_.size(); ++mi) {
      const auto& m = machines_[mi];
      if (m.down) continue;
      if (m.total < cores) continue;
      if (m.free >= cores) return sim_.now();
      // Running tasks on this machine, by finish time.
      std::vector<const RunningTask*> local;
      for (const auto& r : running_)
        if (r.machine == mi) local.push_back(&r);
      std::sort(local.begin(), local.end(),
                [](const RunningTask* a, const RunningTask* b) {
                  return a->finish < b->finish;
                });
      std::uint32_t available = m.free;
      for (const auto* r : local) {
        available += r->cores;
        if (available >= cores) {
          shadow = std::min(shadow, r->finish);
          break;
        }
      }
    }
    return shadow;
  }

  /// First machine that fits, preferring faster machines then lower ids.
  std::size_t find_fit(std::uint32_t cores) const {
    std::size_t best = machines_.size();
    for (std::size_t mi = 0; mi < machines_.size(); ++mi) {
      if (machines_[mi].down) continue;
      if (machines_[mi].free < cores) continue;
      if (best == machines_.size() ||
          machines_[mi].speed > machines_[best].speed) {
        best = mi;
      }
    }
    return best;
  }

  void pass() {
    pass_pending_ = false;
    if (eligible_.empty()) return;
    if (sim_.now() < blocked_until_) {
      sim_.schedule_at(blocked_until_, [this] { request_pass(); });
      return;
    }

    if (obs_ != nullptr) {
      passes_->add(1);
      queue_depth_->set(static_cast<double>(eligible_.size()));
      obs_->tracer.begin("sched.pass", "sched", sim_.now());
    }
    std::vector<TaskRef> queue;
    queue.reserve(eligible_.size());
    for (const auto& [ji, ti] : eligible_) queue.push_back(make_ref(ji, ti));
    const SchedState state = make_state(queue.size());

    const double overhead = policy_.tick(state, queue);
    if (overhead > 0.0) {
      blocked_until_ = sim_.now() + overhead;
      result_.decision_overhead += overhead;
      sim_.schedule_at(blocked_until_, [this] { request_pass(); });
      if (obs_ != nullptr) obs_->tracer.end("sched.pass", "sched", sim_.now());
      return;
    }

    policy_.order(queue, state);

    bool constrain = false;
    double shadow = std::numeric_limits<double>::infinity();
    for (const auto& ref : queue) {
      const std::size_t mi = find_fit(ref.cores);
      if (mi == machines_.size()) {
        if (policy_.backfilling() && !constrain) {
          constrain = true;
          shadow = compute_shadow(ref.cores);
        }
        continue;
      }
      const double latency =
          machines_[mi].cluster == 0 ? 0.0 : env_.inter_cluster_latency;
      const double elapsed = latency + ref.runtime / machines_[mi].speed;
      if (constrain && sim_.now() + elapsed > shadow) continue;
      place(ref, mi, elapsed);
    }
    if (obs_ != nullptr) {
      queue_depth_->set(static_cast<double>(eligible_.size()));
      obs_->tracer.end("sched.pass", "sched", sim_.now());
    }
  }

  void place(const TaskRef& ref, std::size_t mi, double elapsed) {
    // Locate the eligible entry (job_id is the index after normalize()).
    const auto it = std::find_if(
        eligible_.begin(), eligible_.end(), [&](const auto& e) {
          return jobs_[e.first].job->id == ref.job_id &&
                 e.second == ref.task_id;
        });
    if (it == eligible_.end()) return;  // policy returned a stale ref
    const std::size_t ji = it->first;
    const std::size_t ti = it->second;
    eligible_.erase(it);

    auto& js = jobs_[ji];
    js.tasks[ti].status = TaskStatus::kRunning;
    if (js.start < 0.0) js.start = sim_.now();

    if (obs_ != nullptr) {
      placed_->add(1);
      const double wait = sim_.now() - js.tasks[ti].eligible_time;
      wait_hist_->observe(wait);
      wait_dig_->add(wait);
    }
    machines_[mi].free -= ref.cores;
    observe_busy();
    result_.machine_busy_seconds[mi] += elapsed;

    RunningTask rt;
    rt.finish = sim_.now() + elapsed;
    rt.machine = static_cast<std::uint32_t>(mi);
    rt.cores = ref.cores;
    rt.ji = ji;
    rt.ti = ti;
    if (flight_ != nullptr)
      rt.place_seq = flight_->record(flight_entity_[mi], sim_.now(), "place",
                                     static_cast<double>(ref.job_id));
    rt.completion = sim_.schedule_after(
        elapsed, [this, ji, ti, mi, cores = ref.cores, elapsed] {
          complete(ji, ti, mi, cores, elapsed);
        });
    running_.push_back(rt);
  }

  void complete(std::size_t ji, std::size_t ti, std::size_t mi,
                std::uint32_t cores, double elapsed) {
    auto& js = jobs_[ji];
    js.tasks[ti].status = TaskStatus::kDone;
    machines_[mi].free += cores;
    observe_busy();
    ++result_.tasks_completed;

    // Remove this task's running record.
    const auto rit = std::find_if(
        running_.begin(), running_.end(),
        [&](const RunningTask& r) { return r.ji == ji && r.ti == ti; });
    if (rit != running_.end()) {
      if (flight_ != nullptr)
        flight_->record(flight_entity_[mi], sim_.now(), "complete",
                        static_cast<double>(js.job->id), rit->place_seq);
      running_.erase(rit);
    }

    add_usage(js.job->user, elapsed * cores);

    // Unlock dependents.
    for (std::size_t other = 0; other < js.job->tasks.size(); ++other) {
      if (js.tasks[other].status != TaskStatus::kPending) continue;
      const auto& deps = js.job->tasks[other].deps;
      if (std::find(deps.begin(), deps.end(),
                    static_cast<workflow::TaskId>(ti)) == deps.end())
        continue;
      if (--js.tasks[other].remaining_deps == 0 && js.arrived) {
        js.tasks[other].status = TaskStatus::kEligible;
        js.tasks[other].eligible_time = sim_.now();
        eligible_.emplace_back(ji, other);
      }
    }

    if (--js.remaining == 0) js.finish = sim_.now();
    request_pass();
  }

  void add_usage(const std::string& user, double work) {
    for (auto& [name, used] : user_usage_) {
      if (name == user) {
        used += work;
        return;
      }
    }
    user_usage_.emplace_back(user, work);
  }

  void observe_busy() {
    std::uint32_t busy = 0;
    for (const auto& m : machines_) busy += m.total - m.free;
    busy_.observe(sim_.now(), static_cast<double>(busy));
  }

  void finalize() {
    double first_submit = std::numeric_limits<double>::infinity();
    std::vector<double> slowdowns;
    std::vector<double> waits;
    for (const auto& js : jobs_) {
      first_submit = std::min(first_submit, js.job->submit_time);
      if (js.finish < 0.0) continue;  // unfinished at time limit
      JobStats stats;
      stats.id = js.job->id;
      stats.submit = js.job->submit_time;
      stats.start = js.start;
      stats.finish = js.finish;
      stats.critical_path = js.job->critical_path();
      result_.makespan = std::max(result_.makespan, js.finish);
      slowdowns.push_back(stats.slowdown());
      waits.push_back(stats.wait());
      result_.jobs.push_back(stats);
    }
    result_.mean_wait = stats::mean(waits);
    result_.mean_slowdown = stats::mean(slowdowns);
    result_.median_slowdown = stats::quantile(slowdowns, 0.5);
    result_.p95_slowdown = stats::quantile(slowdowns, 0.95);
    result_.p999_slowdown = stats::quantile(slowdowns, 0.999);
    for (const double w : waits) result_.wait_digest.add(w);
    for (const double s : slowdowns) result_.slowdown_digest.add(s);
    const double horizon = result_.makespan - (std::isfinite(first_submit)
                                                   ? first_submit
                                                   : 0.0);
    if (horizon > 0.0) {
      result_.utilization = busy_.average(result_.makespan) /
                            static_cast<double>(total_cores());
    }
    if (injector_.has_value()) {
      result_.faults_injected = injector_->injected();
      result_.faults_recovered = injector_->recovered_count();
    }
  }

  const cluster::Environment& env_;
  Policy& policy_;
  SimOptions options_;
  obs::Observability* obs_ = nullptr;
  obs::Counter* passes_ = nullptr;
  obs::Counter* placed_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;
  obs::Digest* wait_dig_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::vector<std::size_t> flight_entity_;  // per-machine ring ids

  // Kernel: owned in standalone runs, borrowed from the composition layer
  // in composed runs. owned_ must precede sim_ (init order).
  std::unique_ptr<sim::Simulation> owned_;
  sim::Simulation& sim_;
  bool external_ = false;
  std::vector<MachineState> machines_;
  std::vector<JobState> jobs_;
  std::vector<std::pair<std::size_t, std::size_t>> eligible_;
  std::vector<RunningTask> running_;
  std::vector<std::pair<std::string, double>> user_usage_;
  stats::TimeWeighted busy_;
  bool pass_pending_ = false;
  double blocked_until_ = 0.0;
  std::optional<fault::Injector> injector_;
  SchedResult result_;
};

}  // namespace detail

SchedResult simulate(const cluster::Environment& env,
                     const workflow::Workload& workload, Policy& policy,
                     const SimOptions& options) {
  detail::SchedEngine engine(env, workload, policy, options);
  return engine.run();
}

SchedDriver::SchedDriver(const cluster::Environment& env,
                         const workflow::Workload& workload, Policy& policy,
                         const SimOptions& options, sim::Simulation& sim)
    : engine_(std::make_unique<detail::SchedEngine>(env, workload, policy,
                                                    options, &sim)) {}

SchedDriver::~SchedDriver() = default;

void SchedDriver::prepare() { engine_->prepare(); }
SchedResult SchedDriver::collect() { return engine_->collect(); }

std::size_t SchedDriver::machine_count() const {
  return engine_->machine_count();
}
std::uint32_t SchedDriver::free_cores_on(std::size_t machine) const {
  return engine_->free_cores_on(machine);
}
std::uint32_t SchedDriver::total_cores_on(std::size_t machine) const {
  return engine_->total_cores_on(machine);
}
bool SchedDriver::machine_down(std::size_t machine) const {
  return engine_->machine_is_down(machine);
}
bool SchedDriver::reserve_cores(std::size_t machine, std::uint32_t cores) {
  return engine_->reserve_cores(machine, cores);
}
void SchedDriver::release_cores(std::size_t machine, std::uint32_t cores) {
  engine_->release_cores(machine, cores);
}
void SchedDriver::fail_machine(std::size_t machine, double duration) {
  engine_->fail_machine(machine, duration);
}

}  // namespace atlarge::sched
