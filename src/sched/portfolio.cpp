#include "atlarge/sched/portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

#include "atlarge/obs/observability.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/stats/rng.hpp"

namespace atlarge::sched {

namespace {

/// SplitMix64 finalizer; mixes a stream key into a seed so that the
/// (seed, candidate, round) triple maps to an independent RNG stream.
/// Keying streams by candidate *index* (not evaluation position) means
/// adding or removing one candidate never perturbs another candidate's
/// draw, and evaluation order — serial or parallel — is immaterial.
std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t key) noexcept {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

PortfolioScheduler::PortfolioScheduler(
    std::vector<std::unique_ptr<Policy>> policies, cluster::Environment env,
    PortfolioConfig config)
    : policies_(std::move(policies)),
      env_(std::move(env)),
      config_(config) {
  if (policies_.empty())
    throw std::invalid_argument("PortfolioScheduler: empty portfolio");
  ewma_.assign(policies_.size(), 0.0);
  evaluated_.assign(policies_.size(), false);
}

void PortfolioScheduler::order(std::vector<TaskRef>& queue,
                               const SchedState& state) {
  policies_[current_]->order(queue, state);
}

std::string PortfolioScheduler::current_policy() const {
  return policies_[current_]->name();
}

std::vector<std::size_t> PortfolioScheduler::candidate_set() const {
  std::vector<std::size_t> all(policies_.size());
  std::iota(all.begin(), all.end(), 0);
  if (config_.active_set == 0 || config_.active_set >= policies_.size())
    return all;
  // Never-evaluated policies rank first (exploration), then by EWMA utility.
  std::stable_sort(all.begin(), all.end(), [&](std::size_t a, std::size_t b) {
    if (evaluated_[a] != evaluated_[b]) return !evaluated_[a];
    return ewma_[a] < ewma_[b];
  });
  all.resize(config_.active_set);
  return all;
}

workflow::Workload PortfolioScheduler::build_snapshot(
    const std::vector<TaskRef>& queue) const {
  // Snapshot: the eligible tasks, grouped back into their jobs as
  // bags-of-tasks submitted at time zero. (The eligible frontier is what
  // an online portfolio can see; the remaining DAG structure is future
  // information. Grouping preserves job-level slowdown semantics — the
  // metric the real run is judged by — so task-level-greedy policies are
  // not systematically overrated.)
  workflow::Workload snapshot;
  snapshot.name = "snapshot";
  const std::size_t n = std::min(queue.size(), config_.snapshot_cap);
  std::map<std::uint64_t, workflow::Job> grouped;
  for (std::size_t i = 0; i < n; ++i) {
    auto& job = grouped[queue[i].job_id];
    job.user = queue[i].user;
    workflow::Task t;
    t.runtime = queue[i].runtime;
    t.cores = queue[i].cores;
    job.tasks.push_back(std::move(t));
  }
  snapshot.jobs.reserve(grouped.size());
  std::uint64_t next_id = 0;
  for (auto& [job_id, job] : grouped) {
    job.id = next_id++;
    job.submit_time = 0.0;
    snapshot.jobs.push_back(std::move(job));
  }
  return snapshot;
}

double PortfolioScheduler::evaluate(std::size_t pi,
                                    const workflow::Workload& snapshot,
                                    std::uint64_t round) const {
  auto probe = policies_[pi]->clone();
  const workflow::Workload local = snapshot;  // private copy per candidate
  const SchedResult r = simulate(env_, local, *probe);
  double utility = r.mean_slowdown;
  if (config_.utility_noise > 0.0) {
    stats::Rng noise(mix_stream(mix_stream(config_.seed, pi), round));
    utility *= std::max(0.0, 1.0 + noise.normal(0.0, config_.utility_noise));
  }
  return utility;
}

double PortfolioScheduler::tick(const SchedState& state,
                                const std::vector<TaskRef>& queue) {
  if (queue.size() < std::max<std::size_t>(config_.min_queue_to_select, 1) ||
      state.now < next_decision_)
    return 0.0;

  if (config_.obs != nullptr)
    config_.obs->tracer.begin("portfolio.select", "sched", state.now);

  // Evaluate the incumbent first so that ties keep the current policy
  // (switching on a tie is pure churn).
  auto candidates = candidate_set();
  const auto incumbent =
      std::find(candidates.begin(), candidates.end(), current_);
  if (incumbent != candidates.end())
    std::rotate(candidates.begin(), incumbent, incumbent + 1);

  const workflow::Workload snapshot = build_snapshot(queue);
  const std::uint64_t round = round_++;

  // Phase 1 — measure: run every candidate's what-if simulation, each on a
  // cloned policy, a private snapshot copy, and its own RNG stream.
  // Utilities land in per-candidate slots, so thread scheduling cannot
  // affect the result.
  std::vector<double> utilities(candidates.size(), 0.0);
  const auto eval_one = [&](std::size_t ci) {
    utilities[ci] = evaluate(candidates[ci], snapshot, round);
  };
  const std::size_t threads =
      std::min(std::max<std::size_t>(config_.eval_threads, 1),
               candidates.size());
  if (threads > 1) {
    if (!pool_ || pool_->size() < threads)
      pool_ = std::make_unique<sim::ThreadPool>(threads);
    pool_->parallel_for(candidates.size(), eval_one);
  } else {
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) eval_one(ci);
  }

  // Phase 2 — reduce, serially in candidate order: EWMA updates and argmin
  // are order-sensitive, so this part is identical for any thread count.
  double best_utility = std::numeric_limits<double>::infinity();
  std::size_t best = current_;
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    const std::size_t pi = candidates[ci];
    const double utility = utilities[ci];
    if (!evaluated_[pi]) {
      ewma_[pi] = utility;
      evaluated_[pi] = true;
    } else {
      ewma_[pi] = config_.ewma_alpha * utility +
                  (1.0 - config_.ewma_alpha) * ewma_[pi];
    }
    if (utility < best_utility) {
      best_utility = utility;
      best = pi;
    }
  }
  current_ = best;
  ++selections_[policies_[current_]->name()];

  if (config_.obs != nullptr) {
    auto& m = config_.obs->metrics;
    m.counter("portfolio.rounds").add(1);
    m.counter("portfolio.what_if_sims").add(candidates.size());
    m.histogram("portfolio.best_utility").observe(best_utility);
    config_.obs->tracer.end("portfolio.select", "sched", state.now);
  }

  const double overhead =
      config_.cost_per_task_policy *
      static_cast<double>(candidates.size()) *
      static_cast<double>(std::min(queue.size(), config_.snapshot_cap));
  total_overhead_ += overhead;
  // The next selection is an interval after this one's simulations END;
  // anchoring it at the decision instant would re-trigger selection the
  // moment the scheduler unblocks whenever overhead > interval, and no
  // task would ever be placed.
  next_decision_ = state.now + overhead + config_.selection_interval;
  return overhead;
}

std::unique_ptr<Policy> PortfolioScheduler::clone() const {
  std::vector<std::unique_ptr<Policy>> copies;
  copies.reserve(policies_.size());
  for (const auto& p : policies_) copies.push_back(p->clone());
  // Clones never inherit the instrumentation plane: a cloned portfolio may
  // run inside another scheduler's parallel what-if evaluation, and the
  // plane is not thread-safe.
  PortfolioConfig config = config_;
  config.obs = nullptr;
  return std::make_unique<PortfolioScheduler>(std::move(copies), env_,
                                              config);
}

}  // namespace atlarge::sched
