#include "atlarge/sched/policies.hpp"

#include <algorithm>

namespace atlarge::sched {
namespace {

/// Stable tie-break: job id then task id, so every policy is a total order
/// and simulation stays deterministic.
bool by_identity(const TaskRef& a, const TaskRef& b) {
  if (a.job_id != b.job_id) return a.job_id < b.job_id;
  return a.task_id < b.task_id;
}

}  // namespace

double Policy::tick(const SchedState&, const std::vector<TaskRef>&) {
  return 0.0;
}

void FcfsPolicy::order(std::vector<TaskRef>& q, const SchedState&) {
  std::sort(q.begin(), q.end(), [](const TaskRef& a, const TaskRef& b) {
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    if (a.eligible_time != b.eligible_time)
      return a.eligible_time < b.eligible_time;
    return by_identity(a, b);
  });
}

std::unique_ptr<Policy> FcfsPolicy::clone() const {
  return std::make_unique<FcfsPolicy>();
}

void EasyBackfillingPolicy::order(std::vector<TaskRef>& q,
                                  const SchedState& s) {
  FcfsPolicy{}.order(q, s);
}

std::unique_ptr<Policy> EasyBackfillingPolicy::clone() const {
  return std::make_unique<EasyBackfillingPolicy>();
}

void SjfPolicy::order(std::vector<TaskRef>& q, const SchedState&) {
  std::sort(q.begin(), q.end(), [](const TaskRef& a, const TaskRef& b) {
    if (a.runtime != b.runtime) return a.runtime < b.runtime;
    return by_identity(a, b);
  });
}

std::unique_ptr<Policy> SjfPolicy::clone() const {
  return std::make_unique<SjfPolicy>();
}

void LjfPolicy::order(std::vector<TaskRef>& q, const SchedState&) {
  std::sort(q.begin(), q.end(), [](const TaskRef& a, const TaskRef& b) {
    if (a.runtime != b.runtime) return a.runtime > b.runtime;
    return by_identity(a, b);
  });
}

std::unique_ptr<Policy> LjfPolicy::clone() const {
  return std::make_unique<LjfPolicy>();
}

void WideFirstPolicy::order(std::vector<TaskRef>& q, const SchedState&) {
  std::sort(q.begin(), q.end(), [](const TaskRef& a, const TaskRef& b) {
    if (a.cores != b.cores) return a.cores > b.cores;
    if (a.runtime != b.runtime) return a.runtime > b.runtime;
    return by_identity(a, b);
  });
}

std::unique_ptr<Policy> WideFirstPolicy::clone() const {
  return std::make_unique<WideFirstPolicy>();
}

void RandomPolicy::order(std::vector<TaskRef>& q, const SchedState&) {
  // Fisher-Yates with our own RNG (std::shuffle's result is
  // implementation-defined; this keeps runs bit-reproducible).
  for (std::size_t i = q.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(q[i - 1], q[j]);
  }
}

std::unique_ptr<Policy> RandomPolicy::clone() const {
  return std::make_unique<RandomPolicy>(seed_);
}

void FairSharePolicy::order(std::vector<TaskRef>& q, const SchedState& s) {
  const auto usage_of = [&](const std::string& user) {
    if (s.user_usage == nullptr) return 0.0;
    for (const auto& [name, used] : *s.user_usage)
      if (name == user) return used;
    return 0.0;
  };
  std::sort(q.begin(), q.end(), [&](const TaskRef& a, const TaskRef& b) {
    const double ua = usage_of(a.user);
    const double ub = usage_of(b.user);
    if (ua != ub) return ua < ub;
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return by_identity(a, b);
  });
}

std::unique_ptr<Policy> FairSharePolicy::clone() const {
  return std::make_unique<FairSharePolicy>();
}

std::vector<std::unique_ptr<Policy>> standard_policies(
    std::uint64_t random_seed) {
  std::vector<std::unique_ptr<Policy>> zoo;
  zoo.push_back(std::make_unique<FcfsPolicy>());
  zoo.push_back(std::make_unique<EasyBackfillingPolicy>());
  zoo.push_back(std::make_unique<SjfPolicy>());
  zoo.push_back(std::make_unique<LjfPolicy>());
  zoo.push_back(std::make_unique<WideFirstPolicy>());
  zoo.push_back(std::make_unique<RandomPolicy>(random_seed));
  zoo.push_back(std::make_unique<FairSharePolicy>());
  return zoo;
}

}  // namespace atlarge::sched
