#include "atlarge/obs/timeseries.hpp"

#include <cstdio>
#include <stdexcept>

#include "atlarge/obs/json.hpp"

namespace atlarge::obs {
namespace {

void append_exact(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error(std::string(what) + ": cannot open '" + path +
                             "'");
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok)
    throw std::runtime_error(std::string(what) + ": cannot write '" + path +
                             "'");
}

}  // namespace

TimeSeries::TimeSeries(double interval, std::size_t capacity)
    : interval_(interval), capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeries::track_counter(const std::string& name,
                               const Counter& counter) {
  if (frozen_) return;
  columns_.push_back(Column{&counter, nullptr});
  names_.push_back(name);
}

void TimeSeries::track_gauge(const std::string& name, const Gauge& gauge) {
  if (frozen_) return;
  columns_.push_back(Column{nullptr, &gauge});
  names_.push_back(name);
}

double TimeSeries::read(std::size_t column) const noexcept {
  const Column& c = columns_[column];
  return c.counter != nullptr ? static_cast<double>(c.counter->value())
                              : c.gauge->value();
}

void TimeSeries::sample(double t) {
  const std::size_t width = 1 + columns_.size();
  if (!frozen_) {
    // The one allocation: the full ring, sized at the frozen column set.
    data_.resize(capacity_ * width);
    frozen_ = true;
  }
  double* row = data_.data() + head_ * width;
  row[0] = t;
  for (std::size_t c = 0; c < columns_.size(); ++c) row[1 + c] = read(c);
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  if (size_ < capacity_)
    ++size_;
  else
    ++dropped_;
}

std::size_t TimeSeries::row_start(std::size_t row) const noexcept {
  // Oldest retained row sits at head_ once the ring has wrapped.
  const std::size_t first = size_ < capacity_ ? 0 : head_;
  const std::size_t slot =
      first + row >= capacity_ ? first + row - capacity_ : first + row;
  return slot * (1 + columns_.size());
}

double TimeSeries::time_at(std::size_t row) const noexcept {
  return data_[row_start(row)];
}

double TimeSeries::value_at(std::size_t row,
                            std::size_t column) const noexcept {
  return data_[row_start(row) + 1 + column];
}

std::string TimeSeries::csv() const {
  std::string out = "time";
  for (const std::string& name : names_) {
    out += ',';
    out += name;
  }
  out += '\n';
  for (std::size_t r = 0; r < size_; ++r) {
    const std::size_t start = row_start(r);
    for (std::size_t c = 0; c < 1 + columns_.size(); ++c) {
      if (c != 0) out += ',';
      append_exact(out, data_[start + c]);
    }
    out += '\n';
  }
  return out;
}

std::string TimeSeries::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("interval").value(interval_);
  w.key("dropped").value(static_cast<std::uint64_t>(dropped_));
  w.key("columns").begin_array();
  w.value("time");
  for (const std::string& name : names_) w.value(name);
  w.end_array();
  w.key("rows").begin_array();
  for (std::size_t r = 0; r < size_; ++r) {
    const std::size_t start = row_start(r);
    w.begin_array();
    for (std::size_t c = 0; c < 1 + columns_.size(); ++c)
      w.value(data_[start + c]);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TimeSeries::write_json(const std::string& path) const {
  write_file(path, json(), "TimeSeries::write_json");
}

void TimeSeries::write_csv(const std::string& path) const {
  write_file(path, csv(), "TimeSeries::write_csv");
}

}  // namespace atlarge::obs
