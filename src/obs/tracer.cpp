#include "atlarge/obs/trace.hpp"

#include <cstdio>

#include "atlarge/obs/json.hpp"

namespace atlarge::obs {

void Tracer::enable(std::size_t capacity) {
  ring_.assign(capacity, TraceRecord{});
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_ = capacity > 0;
}

double Tracer::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(const char* name, const char* category, double sim_time,
                    SpanKind kind) {
  const TraceRecord rec{name, category, sim_time, wall_now_us(), kind};
  ++recorded_;
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = rec;
    ++size_;
  } else {
    // Full: overwrite the oldest record.
    ring_[head_] = rec;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

std::vector<TraceRecord> Tracer::records() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::string Tracer::chrome_json() const {
  const auto recs = records();
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  const auto emit = [&w](const char* name, const char* category,
                         const char* ph, double wall_us, double sim_time) {
    w.begin_object();
    w.key("name").value(name);
    w.key("cat").value(category);
    w.key("ph").value(ph);
    w.key("ts").value(wall_us);
    w.key("pid").value(0);
    w.key("tid").value(0);
    w.key("args").begin_object().key("t_sim").value(sim_time).end_object();
    w.end_object();
  };

  // B/E records nest like a stack (single logical thread), so orphaned E
  // records from a ring wrap are exactly the E's seen at depth 0; open B's
  // at the end are closed at the last timestamp so every B has an E.
  std::vector<const TraceRecord*> open;
  double last_wall_us = 0.0;
  double last_sim = 0.0;
  for (const auto& rec : recs) {
    last_wall_us = rec.wall_us;
    last_sim = rec.sim_time;
    switch (rec.kind) {
      case SpanKind::kBegin:
        open.push_back(&rec);
        emit(rec.name, rec.category, "B", rec.wall_us, rec.sim_time);
        break;
      case SpanKind::kEnd:
        if (open.empty()) break;  // begin lost to ring wrap
        open.pop_back();
        emit(rec.name, rec.category, "E", rec.wall_us, rec.sim_time);
        break;
      case SpanKind::kInstant:
        emit(rec.name, rec.category, "i", rec.wall_us, rec.sim_time);
        break;
    }
  }
  while (!open.empty()) {
    const TraceRecord* b = open.back();
    open.pop_back();
    emit(b->name, b->category, "E", last_wall_us, last_sim);
  }

  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData")
      .begin_object()
      .key("recorded")
      .value(recorded_)
      .key("dropped")
      .value(dropped_)
      .end_object();
  w.end_object();
  return w.str();
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace atlarge::obs
