#include "atlarge/obs/flight.hpp"

#include <cstdio>
#include <stdexcept>

#include "atlarge/obs/json.hpp"

namespace atlarge::obs {

std::size_t FlightRecorder::entity(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Ring ring;
  ring.name = name;
  ring.records.reserve(per_entity_);
  rings_.push_back(std::move(ring));
  index_.emplace(name, rings_.size() - 1);
  return rings_.size() - 1;
}

std::uint64_t FlightRecorder::record(std::size_t entity, double t,
                                     const char* event, double detail,
                                     std::uint64_t cause) {
  Ring& ring = rings_[entity];
  Record rec;
  rec.time = t;
  rec.event = event;
  rec.detail = detail;
  rec.seq = next_seq_++;
  rec.cause = cause;
  if (ring.records.size() < per_entity_) {
    ring.records.push_back(rec);
    ++ring.size;
  } else {
    ring.records[ring.head] = rec;  // overwrite the oldest
    ++dropped_;
  }
  ring.head = ring.head + 1 == per_entity_ ? 0 : ring.head + 1;
  ring.last_seq = rec.seq;
  return rec.seq;
}

std::string FlightRecorder::chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (std::size_t e = 0; e < rings_.size(); ++e) {
    const Ring& ring = rings_[e];
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(e + 1));
    w.key("args").begin_object().key("name").value(ring.name).end_object();
    w.end_object();
  }
  for (std::size_t e = 0; e < rings_.size(); ++e) {
    const Ring& ring = rings_[e];
    // Oldest retained record first: once wrapped, it sits at head.
    const std::size_t first = ring.size < per_entity_ ? 0 : ring.head;
    for (std::size_t i = 0; i < ring.size; ++i) {
      const std::size_t slot =
          first + i >= per_entity_ ? first + i - per_entity_ : first + i;
      const Record& rec = ring.records[slot];
      w.begin_object();
      w.key("name").value(rec.event);
      w.key("cat").value("flight");
      w.key("ph").value("i");
      w.key("s").value("t");
      // Sim seconds to trace microseconds, the Tracer's convention.
      w.key("ts").value(rec.time * 1e6);
      w.key("pid").value(std::uint64_t{1});
      w.key("tid").value(static_cast<std::uint64_t>(e + 1));
      w.key("args")
          .begin_object()
          .key("seq")
          .value(rec.seq)
          .key("cause")
          .value(rec.cause)
          .key("detail")
          .value(rec.detail)
          .end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void FlightRecorder::write_chrome_json(const std::string& path) const {
  const std::string content = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("FlightRecorder: cannot open '" + path + "'");
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok)
    throw std::runtime_error("FlightRecorder: cannot write '" + path + "'");
}

}  // namespace atlarge::obs
