#include "atlarge/obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "atlarge/obs/json.hpp"

namespace atlarge::obs {
namespace {

const char* kind_name(SloKind kind) {
  switch (kind) {
    case SloKind::kErrorRatio: return "error_ratio";
    case SloKind::kLatencyAbove: return "latency_above";
    case SloKind::kGaugeAbove: return "gauge_above";
  }
  return "?";
}

}  // namespace

std::size_t SloMonitor::add(SloSpec spec) {
  if (!(spec.objective >= 0.0 && spec.objective < 1.0))
    throw std::invalid_argument("SloMonitor: objective must be in [0, 1)");
  if (!(spec.fast.span > 0.0) || !(spec.slow.span > 0.0))
    throw std::invalid_argument("SloMonitor: window spans must be > 0");
  const bool wired =
      (spec.kind == SloKind::kErrorRatio && spec.bad != nullptr &&
       spec.total != nullptr) ||
      (spec.kind == SloKind::kLatencyAbove && spec.digest != nullptr) ||
      (spec.kind == SloKind::kGaugeAbove && spec.gauge != nullptr);
  if (!wired)
    throw std::invalid_argument(
        "SloMonitor: spec instruments do not match its kind");

  State state;
  state.spec = std::move(spec);
  for (int w = 0; w < 2; ++w) {
    const SloWindow& win = w == 0 ? state.spec.fast : state.spec.slow;
    state.windows[w].span = win.span;
    state.windows[w].burn_threshold = win.burn_threshold;
    state.windows[w].bucket_width =
        win.span / static_cast<double>(kWindowBuckets);
    state.windows[w].bad.assign(kWindowBuckets, 0.0);
    state.windows[w].total.assign(kWindowBuckets, 0.0);
  }
  slos_.push_back(std::move(state));
  if (alerts_.capacity() == 0) alerts_.reserve(64);
  return slos_.size() - 1;
}

void SloMonitor::cumulative(const State& s, double& bad,
                            double& total) const {
  switch (s.spec.kind) {
    case SloKind::kErrorRatio:
      bad = static_cast<double>(s.spec.bad->value());
      total = static_cast<double>(s.spec.total->value());
      break;
    case SloKind::kLatencyAbove:
      bad = static_cast<double>(s.spec.digest->count_above(s.spec.threshold));
      total = static_cast<double>(s.spec.digest->count());
      break;
    case SloKind::kGaugeAbove:
      // Each evaluation is one observation of the gauge: the budget is
      // over *time spent* above the threshold, not over events.
      bad = s.last_bad + (s.spec.gauge->value() > s.spec.threshold ? 1.0
                                                                   : 0.0);
      total = s.last_total + 1.0;
      break;
  }
}

void SloMonitor::Window::fold(double t, double dbad, double dtotal) {
  const auto bucket =
      static_cast<std::int64_t>(std::floor(t / bucket_width));
  if (current < 0) {
    current = bucket;
  } else if (bucket > current) {
    // Zero every slot the clock skipped past (at most the whole ring).
    const std::int64_t skipped =
        std::min<std::int64_t>(bucket - current,
                               static_cast<std::int64_t>(kWindowBuckets));
    for (std::int64_t i = 1; i <= skipped; ++i) {
      const std::size_t slot =
          static_cast<std::size_t>((current + i) % kWindowBuckets);
      bad[slot] = 0.0;
      total[slot] = 0.0;
    }
    current = bucket;
  }
  const std::size_t slot = static_cast<std::size_t>(current % kWindowBuckets);
  bad[slot] += dbad;
  total[slot] += dtotal;
}

void SloMonitor::advance(double t) {
  for (State& s : slos_) {
    double bad = 0.0;
    double total = 0.0;
    cumulative(s, bad, total);
    const double dbad = bad - s.last_bad;
    const double dtotal = total - s.last_total;
    s.last_bad = bad;
    s.last_total = total;
    const double budget = 1.0 - s.spec.objective;

    bool burning = true;
    for (Window& w : s.windows) {
      w.fold(t, dbad, dtotal);
      double wbad = 0.0;
      double wtotal = 0.0;
      for (std::size_t i = 0; i < kWindowBuckets; ++i) {
        wbad += w.bad[i];
        wtotal += w.total[i];
      }
      w.burn = wtotal <= 0.0 ? 0.0 : (wbad / wtotal) / budget;
      if (w.burn < w.burn_threshold) burning = false;
    }

    if (burning && !s.firing) {
      SloAlert alert;
      alert.time = t;
      alert.slo = static_cast<std::size_t>(&s - slos_.data());
      alert.name = s.spec.name;
      alert.burn_fast = s.windows[0].burn;
      alert.burn_slow = s.windows[1].burn;
      alerts_.push_back(std::move(alert));
    }
    s.firing = burning;
  }
}

std::string SloMonitor::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("slos").begin_array();
  for (const State& s : slos_) {
    w.begin_object();
    w.key("name").value(s.spec.name);
    w.key("kind").value(kind_name(s.spec.kind));
    w.key("objective").value(s.spec.objective);
    w.key("threshold").value(s.spec.threshold);
    w.key("firing").value(s.firing);
    w.key("burn_fast").value(s.windows[0].burn);
    w.key("burn_slow").value(s.windows[1].burn);
    w.end_object();
  }
  w.end_array();
  w.key("alerts").begin_array();
  for (const SloAlert& a : alerts_) {
    w.begin_object();
    w.key("time").value(a.time);
    w.key("slo").value(static_cast<std::uint64_t>(a.slo));
    w.key("name").value(a.name);
    w.key("burn_fast").value(a.burn_fast);
    w.key("burn_slow").value(a.burn_slow);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace atlarge::obs
