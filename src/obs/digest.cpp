#include "atlarge/obs/digest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace atlarge::obs {

int Digest::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;              // zero, negatives, NaN -> underflow
  if (std::isinf(v)) return kBuckets - 1;
  int e;
  const double m = std::frexp(v, &e);    // v = m * 2^e, m in [0.5, 1)
  const int octave = (e - 1) - kMinExp;  // floor(log2 v) - kMinExp
  if (octave < 0) return 0;
  if (octave >= kOctaves) return kBuckets - 1;
  // Linear position of the mantissa within its octave: m*2 in [1, 2).
  const int sub = static_cast<int>((m * 2.0 - 1.0) * kSub);
  return 1 + octave * kSub + std::min(sub, kSub - 1);
}

void Digest::add(double v, std::uint64_t n) noexcept {
  if (n == 0) return;
  if (std::isnan(v) || std::isinf(v)) {
    buckets_[kBuckets - 1] += n;
    count_ += n;
    return;
  }
  if (finite_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  finite_ += n;
  count_ += n;
  sum_ += v * static_cast<double>(n);
  buckets_[bucket_index(v)] += n;
}

void Digest::merge(const Digest& other) noexcept {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.finite_ != 0) {
    if (finite_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  finite_ += other.finite_;
  sum_ += other.sum_;
}

double Digest::bucket_upper_bound(int i) noexcept {
  if (i <= 0) return std::ldexp(1.0, kMinExp);
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const int octave = (i - 1) / kSub;
  const int sub = (i - 1) % kSub;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSub,
                    kMinExp + octave);
}

double Digest::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target)
      return std::clamp(bucket_upper_bound(i), min(), max());
  }
  return max();
}

std::uint64_t Digest::count_above(double x) const noexcept {
  std::uint64_t below = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (bucket_upper_bound(i) > x) break;
    below += buckets_[i];
  }
  return count_ - below;
}

std::string Digest::serialize() const {
  if (count_ == 0) return "";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "d1;%llu;%llu;%.17g;%.17g;%.17g;",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(finite_), sum_, min_, max_);
  std::string out = buf;
  bool first = true;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%d:%llu", i,
                  static_cast<unsigned long long>(buckets_[i]));
    out += buf;
  }
  return out;
}

bool Digest::deserialize(std::string_view text, Digest& out) {
  out = Digest{};
  if (text.empty()) return true;
  const std::string s(text);  // NUL-terminate for strtod/strtoull
  const char* p = s.c_str();
  if (std::strncmp(p, "d1;", 3) != 0) return false;
  p += 3;
  char* end = nullptr;
  const auto u64 = [&](std::uint64_t& v) {
    v = std::strtoull(p, &end, 10);
    const bool ok = end != p && *end == ';';
    p = ok ? end + 1 : p;
    return ok;
  };
  const auto f64 = [&](double& v) {
    v = std::strtod(p, &end);
    const bool ok = end != p && *end == ';';
    p = ok ? end + 1 : p;
    return ok;
  };
  Digest d;
  if (!u64(d.count_) || !u64(d.finite_) || !f64(d.sum_) || !f64(d.min_) ||
      !f64(d.max_))
    return false;
  std::uint64_t total = 0;
  while (*p != '\0') {
    const long idx = std::strtol(p, &end, 10);
    if (end == p || *end != ':' || idx < 0 || idx >= kBuckets) return false;
    p = end + 1;
    const std::uint64_t n = std::strtoull(p, &end, 10);
    if (end == p) return false;
    p = end;
    d.buckets_[idx] += n;
    total += n;
    if (*p == ',') ++p;
    else if (*p != '\0') return false;
  }
  if (total != d.count_) return false;
  out = d;
  return true;
}

}  // namespace atlarge::obs
