#include "atlarge/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "atlarge/obs/json.hpp"

namespace atlarge::obs {

void Histogram::observe(double v) noexcept {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;

  int idx = 0;
  if (v > 0.0) {
    if (std::isinf(v)) {
      idx = kBuckets - 1;
    } else {
      // ilogb(v) = floor(log2 v): values in (2^(e), 2^(e+1)] land in the
      // bucket whose upper bound is 2^(e+1).
      idx = std::clamp(std::ilogb(v) - kMinExp + 1, 0, kBuckets - 1);
    }
  } else if (std::isnan(v)) {
    idx = kBuckets - 1;
  }
  ++buckets_[idx];
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target)
      return std::min(bucket_upper_bound(i), max_);
  }
  return max_;
}

double Histogram::bucket_upper_bound(int i) noexcept {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kMinExp + i);
}

std::string Registry::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("min").value(h.min());
    w.key("max").value(h.max());
    w.key("mean").value(h.mean());
    w.key("p50").value(h.quantile(0.5));
    w.key("p95").value(h.quantile(0.95));
    w.key("p99").value(h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.key("digests").begin_object();
  for (const auto& [name, d] : digests_) {
    w.key(name).begin_object();
    w.key("count").value(d.count());
    w.key("sum").value(d.sum());
    w.key("min").value(d.min());
    w.key("max").value(d.max());
    w.key("mean").value(d.mean());
    w.key("p50").value(d.p50());
    w.key("p95").value(d.p95());
    w.key("p99").value(d.p99());
    w.key("p999").value(d.p999());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline must be escaped; everything else passes through.
std::string prom_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP text escaping: backslash and newline only (quotes are legal).
std::string prom_help_text(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void prom_header(std::string& out, const std::string& n,
                 const std::string& original, const char* type) {
  out += "# HELP " + n + " atlarge metric " + prom_help_text(original) +
         "\n";
  out += "# TYPE " + n + " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string Registry::prometheus() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(name);
    prom_header(out, n, name, "counter");
    out += n + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prom_name(name);
    prom_header(out, n, name, "gauge");
    out += n + " " + prom_number(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    prom_header(out, n, name, "histogram");
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.buckets()[i] == 0) continue;  // sparse: skip empty buckets
      cumulative += h.buckets()[i];
      out += n + "_bucket{le=\"" +
             prom_label_value(prom_number(Histogram::bucket_upper_bound(i))) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
    out += n + "_sum " + prom_number(h.sum()) + "\n";
    out += n + "_count " + std::to_string(h.count()) + "\n";
  }
  for (const auto& [name, d] : digests_) {
    const std::string n = prom_name(name);
    prom_header(out, n, name, "summary");
    static constexpr double kQuantiles[] = {0.5, 0.95, 0.99, 0.999};
    for (const double q : kQuantiles) {
      out += n + "{quantile=\"" + prom_label_value(prom_number(q)) + "\"} " +
             prom_number(d.quantile(q)) + "\n";
    }
    out += n + "_sum " + prom_number(d.sum()) + "\n";
    out += n + "_count " + std::to_string(d.count()) + "\n";
  }
  return out;
}

}  // namespace atlarge::obs
