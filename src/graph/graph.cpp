#include "atlarge/graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace atlarge::graph {
namespace {

/// Stable counting sort of edge indices by `key(edges[i])`: `order_in` is
/// permuted into `order_out` so that keys ascend and equal keys keep their
/// `order_in` order. `counts` is scratch of size n+1 (overwritten).
template <typename Key>
void counting_pass(const std::vector<std::pair<VertexId, VertexId>>& edges,
                   const std::vector<std::size_t>& order_in,
                   std::vector<std::size_t>& order_out,
                   std::vector<std::size_t>& counts, Key key) {
  std::fill(counts.begin(), counts.end(), 0);
  for (const std::size_t i : order_in) ++counts[key(edges[i]) + 1];
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  for (const std::size_t i : order_in) order_out[counts[key(edges[i])]++] = i;
}

}  // namespace

Graph Graph::from_edges(VertexId n,
                        std::vector<std::pair<VertexId, VertexId>> edges,
                        std::vector<double> weights) {
  if (!weights.empty() && weights.size() != edges.size())
    throw std::invalid_argument("Graph: weights/edges size mismatch");
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n)
      throw std::invalid_argument("Graph: edge endpoint out of range");
  }

  // Two stable counting passes (by target, then by source) sort the edge
  // indices by (source, target) in O(n + m) — no comparison sort.
  std::vector<std::size_t> by_target(edges.size());
  std::vector<std::size_t> order(edges.size());
  {
    std::vector<std::size_t> identity(edges.size());
    for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
    std::vector<std::size_t> counts(static_cast<std::size_t>(n) + 1);
    counting_pass(edges, identity, by_target, counts,
                  [](const auto& e) { return e.second; });
    counting_pass(edges, by_target, order, counts,
                  [](const auto& e) { return e.first; });
  }

  Graph g;
  g.n_ = n;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::pair<VertexId, VertexId>> kept;
  kept.reserve(edges.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const auto& e = edges[order[k]];
    if (e.first == e.second) continue;                     // self-loop
    if (!kept.empty() && kept.back() == e) continue;       // duplicate
    kept.push_back(e);
    g.heads_.push_back(e.second);
    if (!weights.empty()) g.weights_.push_back(weights[order[k]]);
    ++g.offsets_[e.first + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];

  // In-CSR: counting-scatter of the kept edges by target. Kept edges are
  // walked in (source, target) order, so every in-adjacency list comes out
  // sorted by source.
  g.in_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : kept) ++g.in_offsets_[e.second + 1];
  for (std::size_t i = 1; i < g.in_offsets_.size(); ++i)
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  g.in_heads_.resize(kept.size());
  std::vector<std::size_t> cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (const auto& [u, v] : kept) g.in_heads_[cursor[v]++] = u;

  // Undirected CSR: per vertex, merge the sorted out- and in-lists,
  // dropping duplicates (edges present in both directions).
  g.und_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.und_heads_.reserve(2 * kept.size());
  for (VertexId v = 0; v < n; ++v) {
    const auto a = g.out(v);
    const auto b = g.in(v);
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      VertexId next;
      if (j == b.size() || (i < a.size() && a[i] < b[j])) {
        next = a[i++];
      } else if (i == a.size() || b[j] < a[i]) {
        next = b[j++];
      } else {  // equal: one neighbor, both directions
        next = a[i++];
        ++j;
      }
      g.und_heads_.push_back(next);
    }
    g.und_offsets_[v + 1] = g.und_heads_.size();
  }
  return g;
}

std::vector<std::vector<VertexId>> Graph::undirected_adjacency() const {
  std::vector<std::vector<VertexId>> adj(n_);
  for (VertexId v = 0; v < n_; ++v) {
    const auto nb = neighbors(v);
    adj[v].assign(nb.begin(), nb.end());
  }
  return adj;
}

std::vector<std::pair<VertexId, VertexId>> Graph::edge_list() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(heads_.size());
  for (VertexId v = 0; v < n_; ++v) {
    for (VertexId u : out(v)) edges.emplace_back(v, u);
  }
  return edges;
}

Graph erdos_renyi(VertexId n, double avg_deg, stats::Rng& rng) {
  // Draw until the *kept* edge count reaches the target: a rejected draw
  // (self-loop or duplicate) is redrawn instead of silently shrinking the
  // realized density below avg_deg. Retries are bounded so a target near
  // the complete graph cannot loop forever.
  const auto max_edges = static_cast<std::size_t>(n) *
                         (n > 0 ? static_cast<std::size_t>(n) - 1 : 0);
  const auto target = std::min(
      static_cast<std::size_t>(std::llround(avg_deg * n)), max_edges);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(target);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(2 * target);
  const std::size_t max_attempts = 10 * target + 1'000;
  for (std::size_t attempt = 0;
       edges.size() < target && attempt < max_attempts; ++attempt) {
    const auto u = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u == v) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph preferential_attachment(VertexId n, std::uint32_t m, stats::Rng& rng) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  // targets_ holds one entry per edge endpoint; sampling uniformly from it
  // is sampling proportionally to degree.
  std::vector<VertexId> targets;
  const VertexId seed_vertices = std::max<VertexId>(m, 2);
  for (VertexId v = 0; v + 1 < seed_vertices; ++v) {
    edges.emplace_back(v, v + 1);
    targets.push_back(v);
    targets.push_back(v + 1);
  }
  for (VertexId v = seed_vertices; v < n; ++v) {
    for (std::uint32_t k = 0; k < m; ++k) {
      const VertexId target = targets[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(targets.size()) - 1))];
      edges.emplace_back(v, target);
      targets.push_back(v);
      targets.push_back(target);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph grid_2d(VertexId side) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  const auto at = [side](VertexId x, VertexId y) { return y * side + x; };
  for (VertexId y = 0; y < side; ++y) {
    for (VertexId x = 0; x < side; ++x) {
      if (x + 1 < side) edges.emplace_back(at(x, y), at(x + 1, y));
      if (y + 1 < side) edges.emplace_back(at(x, y), at(x, y + 1));
    }
  }
  return Graph::from_edges(side * side, std::move(edges));
}

Graph with_random_weights(const Graph& g, double lo, double hi,
                          stats::Rng& rng) {
  auto edges = g.edge_list();
  std::vector<double> weights;
  weights.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    weights.push_back(rng.uniform(lo, hi));
  return Graph::from_edges(g.num_vertices(), std::move(edges),
                           std::move(weights));
}

}  // namespace atlarge::graph
