#include "atlarge/graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace atlarge::graph {

Graph Graph::from_edges(VertexId n,
                        std::vector<std::pair<VertexId, VertexId>> edges,
                        std::vector<double> weights) {
  if (!weights.empty() && weights.size() != edges.size())
    throw std::invalid_argument("Graph: weights/edges size mismatch");
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n)
      throw std::invalid_argument("Graph: edge endpoint out of range");
  }

  // Sort edges (stably carrying weights), drop self-loops and duplicates.
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return edges[a] < edges[b];
  });

  Graph g;
  g.n_ = n;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::pair<VertexId, VertexId>> kept;
  kept.reserve(edges.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const auto& e = edges[order[k]];
    if (e.first == e.second) continue;                     // self-loop
    if (!kept.empty() && kept.back() == e) continue;       // duplicate
    kept.push_back(e);
    g.heads_.push_back(e.second);
    if (!weights.empty()) g.weights_.push_back(weights[order[k]]);
    ++g.offsets_[e.first + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];

  // In-CSR.
  g.in_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : kept) ++g.in_offsets_[e.second + 1];
  for (std::size_t i = 1; i < g.in_offsets_.size(); ++i)
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  g.in_heads_.resize(kept.size());
  std::vector<std::size_t> cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (const auto& [u, v] : kept) g.in_heads_[cursor[v]++] = u;
  return g;
}

std::span<const VertexId> Graph::out(VertexId v) const {
  return {heads_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::span<const VertexId> Graph::in(VertexId v) const {
  return {in_heads_.data() + in_offsets_[v],
          in_offsets_[v + 1] - in_offsets_[v]};
}

double Graph::out_weight(VertexId v, std::size_t i) const {
  if (weights_.empty()) return 1.0;
  return weights_[offsets_[v] + i];
}

std::uint32_t Graph::out_degree(VertexId v) const {
  return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
}

std::uint32_t Graph::in_degree(VertexId v) const {
  return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
}

std::vector<std::vector<VertexId>> Graph::undirected_adjacency() const {
  std::vector<std::vector<VertexId>> adj(n_);
  for (VertexId v = 0; v < n_; ++v) {
    for (VertexId u : out(v)) {
      adj[v].push_back(u);
      adj[u].push_back(v);
    }
  }
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return adj;
}

std::vector<std::pair<VertexId, VertexId>> Graph::edge_list() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(heads_.size());
  for (VertexId v = 0; v < n_; ++v) {
    for (VertexId u : out(v)) edges.emplace_back(v, u);
  }
  return edges;
}

Graph erdos_renyi(VertexId n, double avg_deg, stats::Rng& rng) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  const auto m = static_cast<std::size_t>(avg_deg * n);
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph preferential_attachment(VertexId n, std::uint32_t m, stats::Rng& rng) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  // targets_ holds one entry per edge endpoint; sampling uniformly from it
  // is sampling proportionally to degree.
  std::vector<VertexId> targets;
  const VertexId seed_vertices = std::max<VertexId>(m, 2);
  for (VertexId v = 0; v + 1 < seed_vertices; ++v) {
    edges.emplace_back(v, v + 1);
    targets.push_back(v);
    targets.push_back(v + 1);
  }
  for (VertexId v = seed_vertices; v < n; ++v) {
    for (std::uint32_t k = 0; k < m; ++k) {
      const VertexId target = targets[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(targets.size()) - 1))];
      edges.emplace_back(v, target);
      targets.push_back(v);
      targets.push_back(target);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph grid_2d(VertexId side) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  const auto at = [side](VertexId x, VertexId y) { return y * side + x; };
  for (VertexId y = 0; y < side; ++y) {
    for (VertexId x = 0; x < side; ++x) {
      if (x + 1 < side) edges.emplace_back(at(x, y), at(x + 1, y));
      if (y + 1 < side) edges.emplace_back(at(x, y), at(x, y + 1));
    }
  }
  return Graph::from_edges(side * side, std::move(edges));
}

Graph with_random_weights(const Graph& g, double lo, double hi,
                          stats::Rng& rng) {
  auto edges = g.edge_list();
  std::vector<double> weights;
  weights.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    weights.push_back(rng.uniform(lo, hi));
  return Graph::from_edges(g.num_vertices(), std::move(edges),
                           std::move(weights));
}

}  // namespace atlarge::graph
