#include "atlarge/graph/pad.hpp"

#include <algorithm>
#include <limits>

namespace atlarge::graph {

AlgoClass algo_class(Algorithm a) {
  switch (a) {
    case Algorithm::kPageRank:
    case Algorithm::kCdlp:
      return AlgoClass::kIterativeRegular;
    case Algorithm::kBfs:
    case Algorithm::kSssp:
      return AlgoClass::kTraversalIrregular;
    case Algorithm::kLcc:
      return AlgoClass::kNeighborhoodLocal;
    case Algorithm::kWcc:
      return AlgoClass::kPropagation;
  }
  return AlgoClass::kPropagation;
}

double PlatformModel::class_factor(AlgoClass c) const noexcept {
  switch (c) {
    case AlgoClass::kIterativeRegular: return class_factor_iterative;
    case AlgoClass::kTraversalIrregular: return class_factor_traversal;
    case AlgoClass::kNeighborhoodLocal: return class_factor_neighborhood;
    case AlgoClass::kPropagation: return class_factor_propagation;
  }
  return 1.0;
}

double predict_runtime(const PlatformModel& platform, Algorithm algo,
                       const WorkProfile& work, std::uint64_t vertices,
                       std::uint64_t edges) {
  double edge_ns = platform.per_edge_ns *
                   platform.class_factor(algo_class(algo));
  if (platform.capacity_edges > 0 && edges > platform.capacity_edges)
    edge_ns *= platform.degraded_factor;
  const double compute =
      static_cast<double>(work.edges_traversed) * edge_ns * 1e-9 +
      static_cast<double>(vertices) * static_cast<double>(work.iterations) *
          platform.per_vertex_ns * 1e-9;
  const double sync =
      static_cast<double>(work.iterations) * platform.per_iteration_s;
  return platform.startup_s + sync + compute;
}

std::vector<PlatformModel> standard_platforms() {
  std::vector<PlatformModel> platforms;

  // Disk-based MapReduce (Giraph-on-Hadoop archetype): huge startup and
  // per-superstep materialization, but no capacity wall.
  PlatformModel mr;
  mr.name = "MapReduce-MR";
  mr.startup_s = 30.0;
  mr.per_iteration_s = 4.0;
  mr.per_edge_ns = 60.0;
  mr.per_vertex_ns = 40.0;
  mr.class_factor_traversal = 1.5;  // frontier steps waste full sweeps
  platforms.push_back(mr);

  // In-memory dataflow (Spark/GraphX archetype).
  PlatformModel mem;
  mem.name = "InMemory-DF";
  mem.startup_s = 6.0;
  mem.per_iteration_s = 0.4;
  mem.per_edge_ns = 25.0;
  mem.per_vertex_ns = 15.0;
  mem.capacity_edges = 400'000'000;  // cluster-memory wall
  platforms.push_back(mem);

  // Single-node native (GraphMat/Gunrock-CPU archetype): negligible
  // startup, best constants, hard memory wall.
  PlatformModel native;
  native.name = "Native-1N";
  native.startup_s = 0.05;
  native.per_iteration_s = 0.002;
  native.per_edge_ns = 4.0;
  native.per_vertex_ns = 2.0;
  native.capacity_edges = 50'000'000;
  native.degraded_factor = 25.0;  // thrashing past memory
  platforms.push_back(native);

  // GPU (the "H" of HPAD): superb on regular iterative kernels, penalized
  // on irregular traversals and launch/transfer overhead per iteration.
  PlatformModel gpu;
  gpu.name = "GPU-HET";
  gpu.startup_s = 2.0;  // device setup + H2D transfer
  gpu.per_iteration_s = 0.01;
  gpu.per_edge_ns = 0.8;
  gpu.per_vertex_ns = 0.5;
  gpu.class_factor_iterative = 1.0;
  gpu.class_factor_traversal = 8.0;      // divergence on frontiers
  gpu.class_factor_neighborhood = 0.6;   // intersection is GPU-friendly
  gpu.class_factor_propagation = 1.5;
  gpu.capacity_edges = 120'000'000;  // device memory wall
  gpu.degraded_factor = 100.0;       // out-of-core GPU transfers dominate
  platforms.push_back(gpu);

  return platforms;
}

PadStudy run_pad_study(const std::vector<NamedGraph>& datasets,
                       const std::vector<PlatformModel>& platforms,
                       std::uint32_t threads) {
  PadStudy study;
  KernelOptions kernel_opts;
  kernel_opts.threads = threads;
  std::vector<std::string> winner_names;
  for (const auto& dataset : datasets) {
    const Graph& g = *dataset.graph;
    const double scale = dataset.scale > 0.0 ? dataset.scale : 1.0;
    const auto scaled_vertices =
        static_cast<std::uint64_t>(g.num_vertices() * scale);
    const auto scaled_edges =
        static_cast<std::uint64_t>(static_cast<double>(g.num_edges()) *
                                   scale);
    for (Algorithm algo : all_algorithms()) {
      WorkProfile work = run_algorithm(g, algo, kernel_opts);
      work.edges_traversed = static_cast<std::uint64_t>(
          static_cast<double>(work.edges_traversed) * scale);
      double best_time = std::numeric_limits<double>::infinity();
      std::string best_platform;
      for (const auto& platform : platforms) {
        const double t = predict_runtime(platform, algo, work,
                                         scaled_vertices, scaled_edges);
        study.cells.push_back(
            PadCell{platform.name, to_string(algo), dataset.name, t});
        if (t < best_time) {
          best_time = t;
          best_platform = platform.name;
        }
      }
      study.winners.emplace_back(to_string(algo) + ":" + dataset.name,
                                 best_platform);
      winner_names.push_back(best_platform);
    }
  }
  std::sort(winner_names.begin(), winner_names.end());
  study.distinct_winners = static_cast<std::size_t>(
      std::unique(winner_names.begin(), winner_names.end()) -
      winner_names.begin());
  return study;
}

}  // namespace atlarge::graph
