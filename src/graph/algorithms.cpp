#include "atlarge/graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace atlarge::graph {

BfsResult bfs(const Graph& g, VertexId source) {
  BfsResult result;
  result.depth.assign(g.num_vertices(), kUnreachable);
  if (source >= g.num_vertices()) return result;
  std::vector<VertexId> frontier{source};
  result.depth[source] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    ++result.work.iterations;
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (VertexId u : g.out(v)) {
        ++result.work.edges_traversed;
        if (result.depth[u] == kUnreachable) {
          result.depth[u] = depth;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

PageRankResult pagerank(const Graph& g, std::uint32_t iterations, double d) {
  PageRankResult result;
  const std::size_t n = g.num_vertices();
  if (n == 0) return result;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    ++result.work.iterations;
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const auto out = g.out(v);
      if (out.empty()) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(out.size());
      for (VertexId u : out) {
        ++result.work.edges_traversed;
        next[u] += share;
      }
    }
    const double base =
        (1.0 - d) / static_cast<double>(n) +
        d * dangling / static_cast<double>(n);
    for (VertexId v = 0; v < n; ++v) next[v] = base + d * next[v];
    rank.swap(next);
  }
  result.rank = std::move(rank);
  return result;
}

WccResult wcc(const Graph& g) {
  WccResult result;
  const std::size_t n = g.num_vertices();
  result.component.resize(n);
  for (VertexId v = 0; v < n; ++v) result.component[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.work.iterations;
    for (VertexId v = 0; v < n; ++v) {
      VertexId best = result.component[v];
      for (VertexId u : g.out(v)) {
        ++result.work.edges_traversed;
        best = std::min(best, result.component[u]);
      }
      for (VertexId u : g.in(v)) {
        ++result.work.edges_traversed;
        best = std::min(best, result.component[u]);
      }
      if (best < result.component[v]) {
        result.component[v] = best;
        changed = true;
      }
    }
  }
  std::vector<VertexId> reps(result.component);
  std::sort(reps.begin(), reps.end());
  result.num_components = static_cast<std::size_t>(
      std::unique(reps.begin(), reps.end()) - reps.begin());
  return result;
}

CdlpResult cdlp(const Graph& g, std::uint32_t iterations) {
  CdlpResult result;
  const std::size_t n = g.num_vertices();
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  std::vector<VertexId> next(n);
  std::unordered_map<VertexId, std::uint32_t> votes;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    ++result.work.iterations;
    for (VertexId v = 0; v < n; ++v) {
      votes.clear();
      for (VertexId u : g.out(v)) {
        ++result.work.edges_traversed;
        ++votes[label[u]];
      }
      for (VertexId u : g.in(v)) {
        ++result.work.edges_traversed;
        ++votes[label[u]];
      }
      if (votes.empty()) {
        next[v] = label[v];
        continue;
      }
      VertexId best = label[v];
      std::uint32_t best_count = 0;
      for (const auto& [candidate, count] : votes) {
        if (count > best_count ||
            (count == best_count && candidate < best)) {
          best = candidate;
          best_count = count;
        }
      }
      next[v] = best;
    }
    label.swap(next);
  }
  result.label = std::move(label);
  std::vector<VertexId> reps(result.label);
  std::sort(reps.begin(), reps.end());
  result.num_communities = static_cast<std::size_t>(
      std::unique(reps.begin(), reps.end()) - reps.begin());
  return result;
}

LccResult lcc(const Graph& g) {
  LccResult result;
  const auto adj = g.undirected_adjacency();
  const std::size_t n = adj.size();
  result.coefficient.assign(n, 0.0);
  result.work.iterations = 1;
  double total = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const auto& neighbors = adj[v];
    const std::size_t d = neighbors.size();
    if (d < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        ++result.work.edges_traversed;
        const auto& a = adj[neighbors[i]];
        if (std::binary_search(a.begin(), a.end(), neighbors[j])) ++closed;
      }
    }
    result.coefficient[v] =
        2.0 * static_cast<double>(closed) /
        (static_cast<double>(d) * static_cast<double>(d - 1));
    total += result.coefficient[v];
  }
  result.mean = n > 0 ? total / static_cast<double>(n) : 0.0;
  return result;
}

SsspResult sssp(const Graph& g, VertexId source) {
  SsspResult result;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  result.distance.assign(g.num_vertices(), kInf);
  if (source >= g.num_vertices()) return result;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  result.distance[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist > result.distance[v]) continue;
    ++result.work.iterations;
    const auto out = g.out(v);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ++result.work.edges_traversed;
      const double candidate = dist + g.out_weight(v, i);
      if (candidate < result.distance[out[i]]) {
        result.distance[out[i]] = candidate;
        heap.emplace(candidate, out[i]);
      }
    }
  }
  return result;
}

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kBfs: return "BFS";
    case Algorithm::kPageRank: return "PR";
    case Algorithm::kWcc: return "WCC";
    case Algorithm::kCdlp: return "CDLP";
    case Algorithm::kLcc: return "LCC";
    case Algorithm::kSssp: return "SSSP";
  }
  return "?";
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> kAll = {
      Algorithm::kBfs,  Algorithm::kPageRank, Algorithm::kWcc,
      Algorithm::kCdlp, Algorithm::kLcc,      Algorithm::kSssp};
  return kAll;
}

WorkProfile run_algorithm(const Graph& g, Algorithm a) {
  switch (a) {
    case Algorithm::kBfs: return bfs(g, 0).work;
    case Algorithm::kPageRank: return pagerank(g).work;
    case Algorithm::kWcc: return wcc(g).work;
    case Algorithm::kCdlp: return cdlp(g).work;
    case Algorithm::kLcc: return lcc(g).work;
    case Algorithm::kSssp: return sssp(g, 0).work;
  }
  return {};
}

}  // namespace atlarge::graph
