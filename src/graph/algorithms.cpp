#include "atlarge/graph/algorithms.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>

#include "atlarge/obs/observability.hpp"
#include "atlarge/sim/thread_pool.hpp"

namespace atlarge::graph {
namespace {

// Fixed vertex-block size for parallel_for fan-out. A multiple of 64 so
// every bitmap word belongs to exactly one block (owner-writes need no
// atomics), and independent of the thread count so per-block accumulators
// reduce to byte-identical totals at 1..N threads.
constexpr std::size_t kBlockVertices = 1024;

std::size_t block_count(std::size_t n) {
  return (n + kBlockVertices - 1) / kBlockVertices;
}

/// Runs fn(block, begin, end) for every kBlockVertices-sized vertex block.
template <typename Fn>
void parallel_blocks(sim::ThreadPool& pool, std::size_t n, Fn&& fn) {
  pool.parallel_for(block_count(n), [&](std::size_t b) {
    const std::size_t begin = b * kBlockVertices;
    const std::size_t end = std::min(n, begin + kBlockVertices);
    fn(b, begin, end);
  });
}

/// Dense vertex bitmap. set() is owner-block-only; set_atomic() is safe
/// from any thread (scatter into foreign blocks).
class Bitmap {
 public:
  explicit Bitmap(std::size_t bits) : words_((bits + 63) / 64, 0) {}

  void clear() { std::fill(words_.begin(), words_.end(), 0); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void set_atomic(std::size_t i) {
    std::atomic_ref<std::uint64_t>(words_[i >> 6])
        .fetch_or(std::uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> words_;
};

obs::Tracer* tracer_of(const KernelOptions& opts) {
  return opts.obs != nullptr ? &opts.obs->tracer : nullptr;
}

std::uint32_t lanes(const KernelOptions& opts) {
  return opts.threads == 0 ? 1 : opts.threads;
}

/// Deterministic reduction: block partials summed in block-index order.
template <typename T>
T reduce_in_order(const std::vector<T>& parts) {
  T total{};
  for (const T& p : parts) total += p;
  return total;
}

void publish_work(const WorkProfile& work, const KernelOptions& opts) {
  if (opts.obs == nullptr) return;
  opts.obs->metrics.counter("graph.edges_traversed")
      .add(work.edges_traversed);
  opts.obs->metrics.counter("graph.iterations").add(work.iterations);
}

}  // namespace

BfsResult bfs(const Graph& g, VertexId source, const KernelOptions& opts) {
  BfsResult result;
  const std::size_t n = g.num_vertices();
  result.depth.assign(n, kUnreachable);
  if (source >= n) return result;

  sim::ThreadPool pool(lanes(opts));
  obs::Tracer* tracer = tracer_of(opts);
  const std::size_t m = g.num_edges();
  const std::size_t blocks = block_count(n);

  // Direction-optimizing switch thresholds (Beamer-style): go bottom-up
  // when the frontier's out-edge volume exceeds m/alpha, return top-down
  // when the frontier shrinks below n/beta. Graphs below kMinEdges stay
  // top-down: bottom-up pays an O(n) full sweep per level that tiny
  // graphs cannot amortize.
  constexpr std::size_t kAlpha = 14;
  constexpr std::size_t kBeta = 24;
  constexpr std::size_t kMinEdges = 256;

  Bitmap cur(n), next(n);
  std::vector<std::uint64_t> scanned(blocks, 0);
  std::vector<std::size_t> next_count(blocks, 0), next_edges(blocks, 0);

  result.depth[source] = 0;
  cur.set(source);
  std::size_t frontier_count = 1;
  std::size_t frontier_out_edges = g.out_degree(source);
  bool bottom_up = false;
  std::uint32_t level = 0;

  while (frontier_count > 0) {
    ++level;
    ++result.work.iterations;
    if (tracer != nullptr) tracer->begin("bfs.level", "graph");
    if (!bottom_up && m >= kMinEdges && frontier_out_edges > m / kAlpha) {
      bottom_up = true;
    } else if (bottom_up && frontier_count < n / kBeta) {
      bottom_up = false;
    }
    next.clear();
    const std::uint32_t depth_now = level;

    if (bottom_up) {
      // Unvisited vertices probe their in-neighbors for a frontier
      // member. Every write targets the owner's block, no atomics.
      parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                                   std::size_t end) {
        std::uint64_t edges = 0;
        for (std::size_t v = begin; v < end; ++v) {
          if (result.depth[v] != kUnreachable) continue;
          for (VertexId u : g.in(static_cast<VertexId>(v))) {
            ++edges;
            if (cur.test(u)) {
              result.depth[v] = depth_now;
              next.set(v);
              break;
            }
          }
        }
        scanned[b] = edges;
      });
    } else {
      // Frontier vertices scan their out-edges; the CAS winner claims the
      // neighbor. Every out-edge of the frontier is scanned regardless of
      // claim order, so the edge count is thread-count independent.
      parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                                   std::size_t end) {
        std::uint64_t edges = 0;
        for (std::size_t v = begin; v < end; ++v) {
          if (!cur.test(v)) continue;
          for (VertexId u : g.out(static_cast<VertexId>(v))) {
            ++edges;
            std::atomic_ref<std::uint32_t> slot(result.depth[u]);
            if (slot.load(std::memory_order_relaxed) != kUnreachable)
              continue;
            std::uint32_t expected = kUnreachable;
            if (slot.compare_exchange_strong(expected, depth_now,
                                             std::memory_order_relaxed)) {
              next.set_atomic(u);
            }
          }
        }
        scanned[b] = edges;
      });
    }

    // Frontier statistics for the next direction decision, computed
    // per-block and reduced in block order — deterministic.
    parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                                 std::size_t end) {
      std::size_t count = 0, edges = 0;
      for (std::size_t v = begin; v < end; ++v) {
        if (!next.test(v)) continue;
        ++count;
        edges += g.out_degree(static_cast<VertexId>(v));
      }
      next_count[b] = count;
      next_edges[b] = edges;
    });

    result.work.edges_traversed += reduce_in_order(scanned);
    frontier_count = reduce_in_order(next_count);
    frontier_out_edges = reduce_in_order(next_edges);
    std::swap(cur, next);
    if (tracer != nullptr) tracer->end("bfs.level", "graph");
  }
  publish_work(result.work, opts);
  return result;
}

PageRankResult pagerank(const Graph& g, std::uint32_t iterations, double d,
                        const KernelOptions& opts) {
  PageRankResult result;
  const std::size_t n = g.num_vertices();
  if (n == 0) return result;

  sim::ThreadPool pool(lanes(opts));
  obs::Tracer* tracer = tracer_of(opts);
  const std::size_t blocks = block_count(n);

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  std::vector<double> contrib(n, 0.0);
  std::vector<double> dangling_part(blocks, 0.0);
  std::vector<std::uint64_t> edges_part(blocks, 0);

  // Both passes run on raw restrict-qualified CSR/SoA pointers: the
  // contribution gather is the hot loop of the whole kernel and the span
  // accessor hid the no-alias facts the vectorizer needs. Summation stays
  // in fixed CSR order (single accumulator), so results are bit-identical
  // to the accessor form at every thread count.
  const CsrView in_csr = g.in_csr();
  const CsrView out_csr = g.out_csr();

  for (std::uint32_t it = 0; it < iterations; ++it) {
    ++result.work.iterations;
    if (tracer != nullptr) tracer->begin("pr.iteration", "graph");

    // Pass 1: per-vertex contribution (rank / out-degree) and per-block
    // dangling mass. Out-degree is an offset difference.
    parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                                 std::size_t end) {
      const std::size_t* __restrict out_off = out_csr.offsets;
      const double* __restrict rk = rank.data();
      double* __restrict ct = contrib.data();
      double dangling = 0.0;
      for (std::size_t v = begin; v < end; ++v) {
        const std::size_t deg = out_off[v + 1] - out_off[v];
        if (deg == 0) {
          dangling += rk[v];
          ct[v] = 0.0;
        } else {
          ct[v] = rk[v] / static_cast<double>(deg);
        }
      }
      dangling_part[b] = dangling;
    });
    const double dangling = reduce_in_order(dangling_part);
    const double base = (1.0 - d) / static_cast<double>(n) +
                        d * dangling / static_cast<double>(n);

    // Pass 2: pull over the in-CSR — each next[v] is written by exactly
    // one owner, summing contributions in fixed CSR order. The block's
    // edge count is one offset difference, not a per-edge counter.
    parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                                 std::size_t end) {
      const std::size_t* __restrict off = in_csr.offsets;
      const VertexId* __restrict heads = in_csr.heads;
      const double* __restrict ct = contrib.data();
      double* __restrict nx = next.data();
      for (std::size_t v = begin; v < end; ++v) {
        const std::size_t e0 = off[v];
        const std::size_t e1 = off[v + 1];
        double sum = 0.0;
        for (std::size_t e = e0; e < e1; ++e) sum += ct[heads[e]];
        nx[v] = base + d * sum;
      }
      edges_part[b] += off[end] - off[begin];
    });
    rank.swap(next);
    if (tracer != nullptr) tracer->end("pr.iteration", "graph");
  }
  result.work.edges_traversed = reduce_in_order(edges_part);
  result.rank = std::move(rank);
  publish_work(result.work, opts);
  return result;
}

WccResult wcc(const Graph& g, const KernelOptions& opts) {
  WccResult result;
  const std::size_t n = g.num_vertices();
  result.component.resize(n);
  for (VertexId v = 0; v < n; ++v) result.component[v] = v;
  if (n == 0) return result;

  sim::ThreadPool pool(lanes(opts));
  obs::Tracer* tracer = tracer_of(opts);
  const std::size_t blocks = block_count(n);

  std::vector<VertexId>& comp = result.component;
  std::vector<VertexId> next(n);
  Bitmap scan(n), changed(n);
  for (std::size_t v = 0; v < n; ++v) scan.set(v);
  std::vector<std::uint64_t> edges_part(blocks, 0);
  std::vector<std::uint8_t> changed_part(blocks, 0);

  bool active = true;
  while (active) {
    ++result.work.iterations;
    if (tracer != nullptr) tracer->begin("wcc.round", "graph");
    changed.clear();

    // Gather: only vertices adjacent to a change in the previous round
    // are re-scanned; everyone else keeps their component via the copy.
    parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                                 std::size_t end) {
      std::uint64_t edges = 0;
      std::uint8_t any = 0;
      for (std::size_t v = begin; v < end; ++v) next[v] = comp[v];
      for (std::size_t v = begin; v < end; ++v) {
        if (!scan.test(v)) continue;
        VertexId best = comp[v];
        for (VertexId u : g.neighbors(static_cast<VertexId>(v))) {
          ++edges;
          best = std::min(best, comp[u]);
        }
        if (best < comp[v]) {
          next[v] = best;
          changed.set(v);
          any = 1;
        }
      }
      edges_part[b] += edges;
      changed_part[b] = any;
    });
    comp.swap(next);

    active = false;
    for (const std::uint8_t any : changed_part) active |= any != 0;
    if (active) {
      // Scatter: the next round re-scans every neighbor of a changed
      // vertex (a vertex can only improve via a changed neighbor).
      scan.clear();
      parallel_blocks(pool, n, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
        for (std::size_t v = begin; v < end; ++v) {
          if (!changed.test(v)) continue;
          for (VertexId u : g.neighbors(static_cast<VertexId>(v)))
            scan.set_atomic(u);
        }
      });
    }
    if (tracer != nullptr) tracer->end("wcc.round", "graph");
  }
  result.work.edges_traversed = reduce_in_order(edges_part);

  std::vector<VertexId> reps(comp);
  std::sort(reps.begin(), reps.end());
  result.num_components = static_cast<std::size_t>(
      std::unique(reps.begin(), reps.end()) - reps.begin());
  publish_work(result.work, opts);
  return result;
}

CdlpResult cdlp(const Graph& g, std::uint32_t iterations,
                const KernelOptions& opts) {
  CdlpResult result;
  const std::size_t n = g.num_vertices();
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  std::vector<VertexId> next(n);

  sim::ThreadPool pool(lanes(opts));
  obs::Tracer* tracer = tracer_of(opts);
  const std::size_t blocks = block_count(n);
  std::vector<std::uint64_t> edges_part(blocks, 0);

  // Dense vote counters, one per lane, leased per block. Labels are vertex
  // ids, so votes index count[] directly; after each vertex only the
  // touched entries are reset, keeping the counter O(degree) instead of
  // O(degree log degree) sorting or hashing. The winner (max count,
  // smallest label on ties) is order-independent, so leasing any scratch
  // to any block cannot change results. touched is pre-sized to n and
  // cursor-indexed so the vote update has no push_back and no branch: the
  // label is unconditionally staged at the cursor, which only advances on
  // a first vote.
  struct VoteScratch {
    std::vector<std::uint32_t> count;
    std::vector<VertexId> touched;
  };
  const std::uint32_t nlanes = lanes(opts);
  std::vector<VoteScratch> scratch(nlanes);
  for (auto& s : scratch) {
    s.count.assign(n, 0);
    s.touched.assign(n, 0);
  }
  std::vector<std::size_t> free_scratch(nlanes);
  for (std::size_t i = 0; i < nlanes; ++i) free_scratch[i] = i;
  std::mutex scratch_mu;

  const CsrView out_csr = g.out_csr();
  const CsrView in_csr = g.in_csr();

  for (std::uint32_t it = 0; it < iterations; ++it) {
    ++result.work.iterations;
    if (tracer != nullptr) tracer->begin("cdlp.round", "graph");
    parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                                 std::size_t end) {
      std::size_t si;
      {
        std::lock_guard<std::mutex> lk(scratch_mu);
        si = free_scratch.back();
        free_scratch.pop_back();
      }
      VoteScratch& s = scratch[si];
      std::uint32_t* __restrict count = s.count.data();
      VertexId* __restrict touched = s.touched.data();
      const std::size_t* __restrict out_off = out_csr.offsets;
      const VertexId* __restrict out_heads = out_csr.heads;
      const std::size_t* __restrict in_off = in_csr.offsets;
      const VertexId* __restrict in_heads = in_csr.heads;
      const VertexId* __restrict lab = label.data();
      VertexId* __restrict nxt = next.data();
      for (std::size_t v = begin; v < end; ++v) {
        std::size_t ntouched = 0;
        for (std::size_t e = out_off[v]; e < out_off[v + 1]; ++e) {
          const VertexId l = lab[out_heads[e]];
          const std::uint32_t c = count[l];
          touched[ntouched] = l;
          ntouched += c == 0;
          count[l] = c + 1;
        }
        for (std::size_t e = in_off[v]; e < in_off[v + 1]; ++e) {
          const VertexId l = lab[in_heads[e]];
          const std::uint32_t c = count[l];
          touched[ntouched] = l;
          ntouched += c == 0;
          count[l] = c + 1;
        }
        // Winner scan as conditional selects (no stores under a branch):
        // max count, smallest label on ties.
        VertexId best = lab[v];
        std::uint32_t best_count = 0;
        for (std::size_t i = 0; i < ntouched; ++i) {
          const VertexId l = touched[i];
          const std::uint32_t c = count[l];
          count[l] = 0;
          const bool better =
              c > best_count || (c == best_count && l < best);
          best = better ? l : best;
          best_count = better ? c : best_count;
        }
        nxt[v] = best;
      }
      edges_part[b] += (out_off[end] - out_off[begin]) +
                       (in_off[end] - in_off[begin]);
      {
        std::lock_guard<std::mutex> lk(scratch_mu);
        free_scratch.push_back(si);
      }
    });
    label.swap(next);
    if (tracer != nullptr) tracer->end("cdlp.round", "graph");
  }
  result.work.edges_traversed = reduce_in_order(edges_part);
  result.label = std::move(label);

  std::vector<VertexId> reps(result.label);
  std::sort(reps.begin(), reps.end());
  result.num_communities = static_cast<std::size_t>(
      std::unique(reps.begin(), reps.end()) - reps.begin());
  publish_work(result.work, opts);
  return result;
}

LccResult lcc(const Graph& g, const KernelOptions& opts) {
  LccResult result;
  const std::size_t n = g.num_vertices();
  result.coefficient.assign(n, 0.0);
  result.work.iterations = 1;
  if (n == 0) {
    publish_work(result.work, opts);
    return result;
  }

  sim::ThreadPool pool(lanes(opts));
  obs::Tracer* tracer = tracer_of(opts);
  const std::size_t blocks = block_count(n);
  std::vector<std::uint64_t> edges_part(blocks, 0);
  std::vector<double> total_part(blocks, 0.0);

  if (tracer != nullptr) tracer->begin("lcc.triangles", "graph");

  // Forward algorithm: rank vertices by (undirected degree, id) and orient
  // every edge toward the higher rank, so each triangle {v, u, w} is
  // enumerated exactly once (at its lowest-ranked corner) and the hubs of
  // skewed graphs keep only short forward lists.
  // Counting sort by degree (scanning ids in ascending order makes it the
  // exact (degree, id) lexicographic rank).
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.und_degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::uint64_t> bucket(static_cast<std::size_t>(max_deg) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket[deg[v] + 1];
  for (std::size_t d = 1; d < bucket.size(); ++d) bucket[d] += bucket[d - 1];
  std::vector<VertexId> order(n);
  std::vector<VertexId> rank(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto r = bucket[deg[v]]++;
    order[r] = v;
    rank[v] = static_cast<VertexId>(r);
  }

  // Forward CSR: per vertex, the *ranks* of its higher-ranked neighbors in
  // ascending rank order (a shared sort key for merge intersections).
  std::vector<std::uint64_t> fwd_off(n + 1, 0);
  parallel_blocks(pool, n, [&](std::size_t, std::size_t begin,
                               std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::uint64_t deg = 0;
      for (VertexId u : g.neighbors(static_cast<VertexId>(v)))
        deg += rank[u] > rank[v] ? 1 : 0;
      fwd_off[v + 1] = deg;
    }
  });
  for (std::size_t v = 0; v < n; ++v) fwd_off[v + 1] += fwd_off[v];
  std::vector<VertexId> fwd(fwd_off[n]);
  parallel_blocks(pool, n, [&](std::size_t, std::size_t begin,
                               std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::uint64_t at = fwd_off[v];
      for (VertexId u : g.neighbors(static_cast<VertexId>(v)))
        if (rank[u] > rank[v]) fwd[at++] = rank[u];
      // Forward lists average a handful of entries; insertion sort skips
      // the per-slice std::sort call overhead that would dominate here.
      VertexId* base = fwd.data() + fwd_off[v];
      const std::size_t len = static_cast<std::size_t>(at - fwd_off[v]);
      if (len > 32) {
        std::sort(base, base + len);
      } else {
        for (std::size_t i = 1; i < len; ++i) {
          const VertexId key = base[i];
          std::size_t j = i;
          for (; j > 0 && base[j - 1] > key; --j) base[j] = base[j - 1];
          base[j] = key;
        }
      }
    }
  });

  // Count triangles once each; scatter increments are integer and
  // commutative, so relaxed atomics stay deterministic at any thread
  // count. edges_traversed counts merge steps, deterministic per edge.
  std::vector<std::uint64_t> triangles(n, 0);
  parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                               std::size_t end) {
    std::uint64_t edges = 0;
    for (std::size_t v = begin; v < end; ++v) {
      const VertexId* fv = fwd.data() + fwd_off[v];
      const std::size_t dv =
          static_cast<std::size_t>(fwd_off[v + 1] - fwd_off[v]);
      std::uint64_t at_v = 0;
      for (std::size_t k = 0; k < dv; ++k) {
        const VertexId u = order[fv[k]];
        const VertexId* fu = fwd.data() + fwd_off[u];
        const std::size_t du =
            static_cast<std::size_t>(fwd_off[u + 1] - fwd_off[u]);
        // fu holds ranks above rank(u) = fv[k], so fv[0..k] cannot match:
        // start the merge past k.
        std::size_t i = k + 1, j = 0;
        std::uint64_t at_u = 0;
        while (i < dv && j < du) {
          ++edges;
          if (fv[i] < fu[j]) {
            ++i;
          } else if (fu[j] < fv[i]) {
            ++j;
          } else {
            std::atomic_ref<std::uint64_t>(triangles[order[fv[i]]])
                .fetch_add(1, std::memory_order_relaxed);
            ++at_u;
            ++i;
            ++j;
          }
        }
        if (at_u != 0) {
          std::atomic_ref<std::uint64_t>(triangles[u])
              .fetch_add(at_u, std::memory_order_relaxed);
          at_v += at_u;
        }
      }
      if (at_v != 0) {
        std::atomic_ref<std::uint64_t>(triangles[v])
            .fetch_add(at_v, std::memory_order_relaxed);
      }
    }
    edges_part[b] = edges;
  });

  parallel_blocks(pool, n, [&](std::size_t b, std::size_t begin,
                               std::size_t end) {
    double total = 0.0;
    for (std::size_t v = begin; v < end; ++v) {
      const std::size_t d = g.und_degree(static_cast<VertexId>(v));
      if (d < 2) continue;
      result.coefficient[v] =
          2.0 * static_cast<double>(triangles[v]) /
          (static_cast<double>(d) * static_cast<double>(d - 1));
      total += result.coefficient[v];
    }
    total_part[b] = total;
  });
  if (tracer != nullptr) tracer->end("lcc.triangles", "graph");

  result.work.edges_traversed = reduce_in_order(edges_part);
  const double total = reduce_in_order(total_part);
  result.mean = total / static_cast<double>(n);
  publish_work(result.work, opts);
  return result;
}

SsspResult sssp(const Graph& g, VertexId source, const KernelOptions& opts) {
  SsspResult result;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  result.distance.assign(g.num_vertices(), kInf);
  if (source >= g.num_vertices()) return result;

  obs::Tracer* tracer = tracer_of(opts);
  if (tracer != nullptr) tracer->begin("sssp.dijkstra", "graph");
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  result.distance[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist > result.distance[v]) continue;
    ++result.work.iterations;
    const auto out = g.out(v);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ++result.work.edges_traversed;
      const double candidate = dist + g.out_weight(v, i);
      if (candidate < result.distance[out[i]]) {
        result.distance[out[i]] = candidate;
        heap.emplace(candidate, out[i]);
      }
    }
  }
  if (tracer != nullptr) tracer->end("sssp.dijkstra", "graph");
  publish_work(result.work, opts);
  return result;
}

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kBfs: return "BFS";
    case Algorithm::kPageRank: return "PR";
    case Algorithm::kWcc: return "WCC";
    case Algorithm::kCdlp: return "CDLP";
    case Algorithm::kLcc: return "LCC";
    case Algorithm::kSssp: return "SSSP";
  }
  return "?";
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> kAll = {
      Algorithm::kBfs,  Algorithm::kPageRank, Algorithm::kWcc,
      Algorithm::kCdlp, Algorithm::kLcc,      Algorithm::kSssp};
  return kAll;
}

WorkProfile run_algorithm(const Graph& g, Algorithm a,
                          const KernelOptions& opts) {
  switch (a) {
    case Algorithm::kBfs: return bfs(g, 0, opts).work;
    case Algorithm::kPageRank: return pagerank(g, 20, 0.85, opts).work;
    case Algorithm::kWcc: return wcc(g, opts).work;
    case Algorithm::kCdlp: return cdlp(g, 10, opts).work;
    case Algorithm::kLcc: return lcc(g, opts).work;
    case Algorithm::kSssp: return sssp(g, 0, opts).work;
  }
  return {};
}

}  // namespace atlarge::graph
