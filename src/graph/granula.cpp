#include "atlarge/graph/granula.hpp"

#include <cstring>
#include <utility>

#include "atlarge/obs/observability.hpp"

namespace atlarge::graph {

double Breakdown::total() const noexcept {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.seconds;
  return sum;
}

double Breakdown::share(const std::string& phase) const noexcept {
  const double all = total();
  if (all <= 0.0) return 0.0;
  for (const auto& p : phases) {
    if (p.name == phase) return p.seconds / all;
  }
  return 0.0;
}

Breakdown modeled_breakdown(const PlatformModel& platform, Algorithm algo,
                            const WorkProfile& work, std::uint64_t vertices,
                            std::uint64_t edges) {
  Breakdown b;
  b.label = platform.name + "/" + to_string(algo);
  double edge_ns = platform.per_edge_ns *
                   platform.class_factor(algo_class(algo));
  if (platform.capacity_edges > 0 && edges > platform.capacity_edges)
    edge_ns *= platform.degraded_factor;
  const double compute =
      static_cast<double>(work.edges_traversed) * edge_ns * 1e-9 +
      static_cast<double>(vertices) * static_cast<double>(work.iterations) *
          platform.per_vertex_ns * 1e-9;
  b.phases.push_back(Phase{"startup", platform.startup_s});
  b.phases.push_back(Phase{
      "sync", static_cast<double>(work.iterations) * platform.per_iteration_s});
  b.phases.push_back(Phase{"compute", compute});
  return b;
}

Breakdown measured_breakdown(VertexId n,
                             std::vector<std::pair<VertexId, VertexId>> edges,
                             Algorithm algo, const KernelOptions& opts) {
  // Phase timing is expressed as tracer spans, then folded back into the
  // Breakdown. With a caller-supplied plane the kernel's per-iteration
  // spans land in the same tracer and fold into additional phases.
  obs::Tracer local(8);
  obs::Tracer& tracer = opts.obs != nullptr ? opts.obs->tracer : local;

  tracer.begin("load", "graph");
  const Graph g = Graph::from_edges(n, std::move(edges));
  tracer.end("load", "graph");

  tracer.begin("compute", "graph");
  (void)run_algorithm(g, algo, opts);
  tracer.end("compute", "graph");

  return breakdown_from_trace(tracer, "native/" + to_string(algo));
}

Breakdown breakdown_from_trace(const obs::Tracer& tracer, std::string label) {
  Breakdown b;
  b.label = std::move(label);
  // Match each end to the innermost open begin of the same name. Names are
  // compared by content (distinct literals with equal text are one phase).
  std::vector<std::pair<const char*, double>> open;  // (name, begin wall_us)
  for (const obs::TraceRecord& rec : tracer.records()) {
    switch (rec.kind) {
      case obs::SpanKind::kBegin:
        open.emplace_back(rec.name, rec.wall_us);
        break;
      case obs::SpanKind::kEnd: {
        for (std::size_t i = open.size(); i-- > 0;) {
          if (std::strcmp(open[i].first, rec.name) != 0) continue;
          const double seconds = (rec.wall_us - open[i].second) * 1e-6;
          open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
          Phase* phase = nullptr;
          for (auto& p : b.phases) {
            if (p.name == rec.name) {
              phase = &p;
              break;
            }
          }
          if (phase == nullptr) {
            b.phases.push_back(Phase{rec.name, 0.0});
            phase = &b.phases.back();
          }
          phase->seconds += seconds;
          break;
        }
        break;
      }
      case obs::SpanKind::kInstant:
        break;
    }
  }
  return b;
}

}  // namespace atlarge::graph
