#include "atlarge/graph/granula.hpp"

#include <chrono>

namespace atlarge::graph {

double Breakdown::total() const noexcept {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.seconds;
  return sum;
}

double Breakdown::share(const std::string& phase) const noexcept {
  const double all = total();
  if (all <= 0.0) return 0.0;
  for (const auto& p : phases) {
    if (p.name == phase) return p.seconds / all;
  }
  return 0.0;
}

Breakdown modeled_breakdown(const PlatformModel& platform, Algorithm algo,
                            const WorkProfile& work, std::uint64_t vertices,
                            std::uint64_t edges) {
  Breakdown b;
  b.label = platform.name + "/" + to_string(algo);
  double edge_ns = platform.per_edge_ns *
                   platform.class_factor(algo_class(algo));
  if (platform.capacity_edges > 0 && edges > platform.capacity_edges)
    edge_ns *= platform.degraded_factor;
  const double compute =
      static_cast<double>(work.edges_traversed) * edge_ns * 1e-9 +
      static_cast<double>(vertices) * static_cast<double>(work.iterations) *
          platform.per_vertex_ns * 1e-9;
  b.phases.push_back(Phase{"startup", platform.startup_s});
  b.phases.push_back(Phase{
      "sync", static_cast<double>(work.iterations) * platform.per_iteration_s});
  b.phases.push_back(Phase{"compute", compute});
  return b;
}

Breakdown measured_breakdown(VertexId n,
                             std::vector<std::pair<VertexId, VertexId>> edges,
                             Algorithm algo) {
  using Clock = std::chrono::steady_clock;
  Breakdown b;
  b.label = "native/" + to_string(algo);

  const auto t0 = Clock::now();
  const Graph g = Graph::from_edges(n, std::move(edges));
  const auto t1 = Clock::now();
  (void)run_algorithm(g, algo);
  const auto t2 = Clock::now();

  const auto seconds = [](auto a, auto z) {
    return std::chrono::duration<double>(z - a).count();
  };
  b.phases.push_back(Phase{"load", seconds(t0, t1)});
  b.phases.push_back(Phase{"compute", seconds(t1, t2)});
  return b;
}

}  // namespace atlarge::graph
