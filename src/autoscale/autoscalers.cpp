#include "atlarge/autoscale/autoscalers.hpp"

#include <algorithm>
#include <cmath>

#include "atlarge/stats/descriptive.hpp"

namespace atlarge::autoscale {

std::uint32_t machines_for_cores(double cores,
                                 std::uint32_t cores_per_machine) {
  if (cores <= 0.0) return 0;
  const double per = std::max<std::uint32_t>(cores_per_machine, 1);
  return static_cast<std::uint32_t>(std::ceil(cores / per));
}

std::uint32_t ReactAutoscaler::target_machines(const Observation& obs) {
  return machines_for_cores(obs.demand_cores, obs.cores_per_machine);
}

std::unique_ptr<Autoscaler> ReactAutoscaler::clone() const {
  return std::make_unique<ReactAutoscaler>();
}

std::uint32_t AdaptAutoscaler::target_machines(const Observation& obs) {
  const std::uint32_t needed =
      machines_for_cores(obs.demand_cores, obs.cores_per_machine);
  const std::uint32_t current = obs.supply_machines + obs.pending_machines;
  if (needed > current) {
    over_streak_ = 0;
    return needed;  // eager scale-up
  }
  if (needed < current) {
    if (++over_streak_ >= down_patience_) {
      over_streak_ = 0;
      const std::uint32_t step = std::min(down_step_, current - needed);
      return current - step;  // damped scale-down
    }
    return current;
  }
  over_streak_ = 0;
  return current;
}

std::unique_ptr<Autoscaler> AdaptAutoscaler::clone() const {
  return std::make_unique<AdaptAutoscaler>(down_patience_, down_step_);
}

std::uint32_t HistAutoscaler::target_machines(const Observation& obs) {
  history_.push_back(obs.demand_cores);
  while (history_.size() > window_) history_.pop_front();
  std::vector<double> window(history_.begin(), history_.end());
  const double predicted = stats::quantile(window, percentile_);
  return machines_for_cores(std::max(predicted, obs.demand_cores * 0.0),
                            obs.cores_per_machine);
}

std::unique_ptr<Autoscaler> HistAutoscaler::clone() const {
  return std::make_unique<HistAutoscaler>(window_, percentile_);
}

std::uint32_t RegAutoscaler::target_machines(const Observation& obs) {
  history_.emplace_back(obs.now, obs.demand_cores);
  while (history_.size() > window_) history_.pop_front();
  if (history_.size() < 2)
    return machines_for_cores(obs.demand_cores, obs.cores_per_machine);
  // Least-squares line through (time, demand); predict one interval ahead.
  const double n = static_cast<double>(history_.size());
  double st = 0.0;
  double sd = 0.0;
  double stt = 0.0;
  double std_ = 0.0;
  for (const auto& [t, d] : history_) {
    st += t;
    sd += d;
    stt += t * t;
    std_ += t * d;
  }
  const double denom = n * stt - st * st;
  double predicted = obs.demand_cores;
  if (denom != 0.0) {
    const double slope = (n * std_ - st * sd) / denom;
    const double intercept = (sd - slope * st) / n;
    const double step = history_.size() >= 2
                            ? history_.back().first - history_[history_.size() - 2].first
                            : 0.0;
    predicted = intercept + slope * (obs.now + step);
  }
  predicted = std::max(predicted, 0.0);
  return machines_for_cores(predicted, obs.cores_per_machine);
}

std::unique_ptr<Autoscaler> RegAutoscaler::clone() const {
  return std::make_unique<RegAutoscaler>(window_);
}

std::uint32_t ConPaasAutoscaler::target_machines(const Observation& obs) {
  history_.push_back(obs.demand_cores);
  while (history_.size() > window_) history_.pop_front();
  double avg = 0.0;
  for (double d : history_) avg += d;
  avg /= static_cast<double>(history_.size());
  const double predicted = std::max(avg, obs.demand_cores);
  return machines_for_cores(predicted, obs.cores_per_machine);
}

std::unique_ptr<Autoscaler> ConPaasAutoscaler::clone() const {
  return std::make_unique<ConPaasAutoscaler>(window_);
}

std::uint32_t PlanAutoscaler::target_machines(const Observation& obs) {
  return machines_for_cores(obs.demand_cores + obs.lop_soon_cores,
                            obs.cores_per_machine);
}

std::unique_ptr<Autoscaler> PlanAutoscaler::clone() const {
  return std::make_unique<PlanAutoscaler>();
}

std::uint32_t TokenAutoscaler::target_machines(const Observation& obs) {
  return machines_for_cores(
      obs.demand_cores + token_fraction_ * obs.lop_soon_cores,
      obs.cores_per_machine);
}

std::unique_ptr<Autoscaler> TokenAutoscaler::clone() const {
  return std::make_unique<TokenAutoscaler>(token_fraction_);
}

std::vector<std::unique_ptr<Autoscaler>> standard_autoscalers() {
  std::vector<std::unique_ptr<Autoscaler>> zoo;
  zoo.push_back(std::make_unique<ReactAutoscaler>());
  zoo.push_back(std::make_unique<AdaptAutoscaler>());
  zoo.push_back(std::make_unique<HistAutoscaler>());
  zoo.push_back(std::make_unique<RegAutoscaler>());
  zoo.push_back(std::make_unique<ConPaasAutoscaler>());
  zoo.push_back(std::make_unique<PlanAutoscaler>());
  zoo.push_back(std::make_unique<TokenAutoscaler>());
  return zoo;
}

}  // namespace atlarge::autoscale
