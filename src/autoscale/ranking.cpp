#include "atlarge/autoscale/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atlarge::autoscale {
namespace {

void check_shape(std::span<const SystemScores> systems) {
  if (systems.empty()) return;
  const std::size_t n = systems.front().metrics.size();
  for (const auto& s : systems) {
    if (s.metrics.size() != n)
      throw std::invalid_argument("ranking: ragged metric vectors");
  }
}

void sort_desc(std::vector<Ranked>& out) {
  std::sort(out.begin(), out.end(), [](const Ranked& a, const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.name < b.name;
  });
}

void sort_asc(std::vector<Ranked>& out) {
  std::sort(out.begin(), out.end(), [](const Ranked& a, const Ranked& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.name < b.name;
  });
}

}  // namespace

std::vector<Ranked> rank_pairwise(std::span<const SystemScores> systems) {
  check_shape(systems);
  const std::size_t n = systems.size();
  std::vector<Ranked> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t wins = 0;
    std::size_t pairs = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      ++pairs;
      std::size_t better = 0;
      std::size_t worse = 0;
      for (std::size_t k = 0; k < systems[i].metrics.size(); ++k) {
        if (systems[i].metrics[k] < systems[j].metrics[k]) ++better;
        if (systems[i].metrics[k] > systems[j].metrics[k]) ++worse;
      }
      if (better > worse) ++wins;
    }
    out.push_back(Ranked{systems[i].name,
                         pairs == 0 ? 0.0
                                    : static_cast<double>(wins) /
                                          static_cast<double>(pairs)});
  }
  sort_desc(out);
  return out;
}

std::vector<Ranked> rank_fractional(std::span<const SystemScores> systems) {
  check_shape(systems);
  std::vector<Ranked> out;
  if (systems.empty()) return out;
  const std::size_t metrics = systems.front().metrics.size();
  std::vector<double> best(metrics, 0.0);
  for (std::size_t k = 0; k < metrics; ++k) {
    best[k] = systems.front().metrics[k];
    for (const auto& s : systems) best[k] = std::min(best[k], s.metrics[k]);
  }
  for (const auto& s : systems) {
    double penalty = 0.0;
    for (std::size_t k = 0; k < metrics; ++k) {
      const double denom = std::abs(best[k]) > 1e-12 ? std::abs(best[k]) : 1.0;
      penalty += (s.metrics[k] - best[k]) / denom;
    }
    out.push_back(Ranked{s.name, metrics == 0
                                     ? 0.0
                                     : penalty / static_cast<double>(metrics)});
  }
  sort_asc(out);
  return out;
}

std::vector<Ranked> grade(std::span<const SystemScores> systems,
                          double pairwise_weight) {
  const auto pw = rank_pairwise(systems);
  const auto fr = rank_fractional(systems);
  double max_penalty = 0.0;
  for (const auto& r : fr) max_penalty = std::max(max_penalty, r.score);
  const auto find = [](const std::vector<Ranked>& v, const std::string& name) {
    for (const auto& r : v)
      if (r.name == name) return r.score;
    return 0.0;
  };
  std::vector<Ranked> out;
  out.reserve(systems.size());
  for (const auto& s : systems) {
    const double p = find(pw, s.name);
    const double f = find(fr, s.name);
    const double f_norm = max_penalty > 0.0 ? 1.0 - f / max_penalty : 1.0;
    const double g =
        10.0 * (pairwise_weight * p + (1.0 - pairwise_weight) * f_norm);
    out.push_back(Ranked{s.name, g});
  }
  sort_desc(out);
  return out;
}

}  // namespace atlarge::autoscale
