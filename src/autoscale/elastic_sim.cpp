#include "atlarge/autoscale/elastic_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>

#include "atlarge/fault/injector.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/descriptive.hpp"

namespace atlarge::autoscale {
namespace {

enum class TaskStatus : std::uint8_t { kPending, kEligible, kRunning, kDone };

struct TaskState {
  TaskStatus status = TaskStatus::kPending;
  std::uint32_t remaining_deps = 0;
  double eligible_time = 0.0;
  double expected_finish = 0.0;  // valid while running
  std::uint32_t machine = 0;     // valid while running
  sim::EventHandle completion;   // valid while running
  std::int32_t blame = -1;       // crash event that killed this task last
};

struct JobState {
  const workflow::Job* job = nullptr;
  std::vector<TaskState> tasks;
  std::size_t remaining = 0;
  double start = -1.0;
  double finish = -1.0;
  bool arrived = false;
};

struct MachineInst {
  std::uint32_t free = 0;
  double rental_start = 0.0;
  bool alive = false;
};

class ElasticEngine {
 public:
  ElasticEngine(const workflow::Workload& workload, Autoscaler& autoscaler,
                const ElasticConfig& config)
      : autoscaler_(autoscaler), config_(config), obs_(config.obs) {
    if (obs_ != nullptr) {
      ticks_ = &obs_->metrics.counter("autoscale.ticks");
      added_ = &obs_->metrics.counter("autoscale.machines_added");
      removed_ = &obs_->metrics.counter("autoscale.machines_removed");
      supply_gauge_ = &obs_->metrics.gauge("autoscale.supply_cores");
      demand_gauge_ = &obs_->metrics.gauge("autoscale.demand_cores");
    }
    jobs_.reserve(workload.jobs.size());
    for (const auto& job : workload.jobs) {
      for (const auto& t : job.tasks) {
        if (t.cores > config.cores_per_machine)
          throw std::invalid_argument(
              "run_elastic: task wider than one machine");
      }
      JobState js;
      js.job = &job;
      js.remaining = job.tasks.size();
      js.tasks.resize(job.tasks.size());
      for (std::size_t ti = 0; ti < job.tasks.size(); ++ti)
        js.tasks[ti].remaining_deps =
            static_cast<std::uint32_t>(job.tasks[ti].deps.size());
      jobs_.push_back(std::move(js));
    }
  }

  ElasticResult run() {
    if (obs_ != nullptr) {
      sim_.set_observer(obs_->kernel_observer());
      if (obs_->sampling_hook() != nullptr)
        sim_.set_sampling_hook(obs_->sampling_hook(),
                               obs_->sampling_interval());
      obs_->tracer.begin("autoscale.run", "autoscale", sim_.now());
    }
    // Pre-size the kernel: one arrival per job, one completion per
    // in-flight task, one autoscaler tick, one provisioning timer, and
    // two timers per fault event.
    std::size_t total_tasks = 0;
    for (const JobState& js : jobs_) total_tasks += js.tasks.size();
    const std::size_t fault_events =
        config_.faults != nullptr ? config_.faults->events().size() : 0;
    sim_.reserve(jobs_.size() + total_tasks + 2 * fault_events + 8);
    if (config_.faults != nullptr && !config_.faults->empty()) {
      injector_.emplace(*config_.faults, obs_);
      injector_->on_kind(fault::FaultKind::kMachineCrash,
                         [this](const fault::FaultEvent& e) { crash(e); });
      sim_.set_fault_hook(&*injector_);
    }
    for (std::uint32_t i = 0; i < config_.min_machines; ++i) add_machine();
    for (std::size_t ji = 0; ji < jobs_.size(); ++ji)
      sim_.schedule_at(jobs_[ji].job->submit_time, [this, ji] { arrive(ji); });
    sim_.schedule_at(0.0, [this] { tick(); });
    sim_.run();
    finalize();
    if (obs_ != nullptr)
      obs_->tracer.end("autoscale.run", "autoscale", sim_.now());
    return std::move(result_);
  }

 private:
  std::uint32_t alive_machines() const {
    std::uint32_t n = 0;
    for (const auto& m : machines_)
      if (m.alive) ++n;
    return n;
  }

  void add_machine() {
    if (added_ != nullptr) added_->add(1);
    // Reuse a dead slot if any, else grow.
    for (auto& m : machines_) {
      if (!m.alive) {
        m.alive = true;
        m.free = config_.cores_per_machine;
        m.rental_start = sim_.now();
        return;
      }
    }
    machines_.push_back(
        MachineInst{config_.cores_per_machine, sim_.now(), true});
  }

  void remove_machine(std::size_t mi) {
    auto& m = machines_[mi];
    m.alive = false;
    result_.rentals.push_back(sim_.now() - m.rental_start);
    if (removed_ != nullptr) removed_->add(1);
  }

  double demand_cores() const {
    double demand = 0.0;
    for (const auto& js : jobs_) {
      if (!js.arrived) continue;
      for (std::size_t ti = 0; ti < js.tasks.size(); ++ti) {
        const auto s = js.tasks[ti].status;
        if (s == TaskStatus::kEligible || s == TaskStatus::kRunning)
          demand += js.job->tasks[ti].cores;
      }
    }
    return demand;
  }

  /// Cores of pending tasks whose unfinished dependencies are all running
  /// and expected to finish within one decision interval.
  double lop_soon_cores() const {
    double lop = 0.0;
    const double horizon = sim_.now() + config_.interval;
    for (const auto& js : jobs_) {
      if (!js.arrived) continue;
      for (std::size_t ti = 0; ti < js.tasks.size(); ++ti) {
        if (js.tasks[ti].status != TaskStatus::kPending) continue;
        bool soon = true;
        for (auto dep : js.job->tasks[ti].deps) {
          const auto& ds = js.tasks[dep];
          if (ds.status == TaskStatus::kDone) continue;
          if (ds.status == TaskStatus::kRunning &&
              ds.expected_finish <= horizon)
            continue;
          soon = false;
          break;
        }
        if (soon) lop += js.job->tasks[ti].cores;
      }
    }
    return lop;
  }

  void tick() {
    if (obs_ != nullptr) {
      ticks_->add(1);
      obs_->tracer.begin("autoscale.tick", "autoscale", sim_.now());
    }
    const double demand = demand_cores();
    Observation obs;
    obs.now = sim_.now();
    obs.demand_cores = demand;
    obs.supply_machines = alive_machines();
    obs.pending_machines = pending_;
    obs.cores_per_machine = config_.cores_per_machine;
    obs.queued_tasks = eligible_.size();
    obs.lop_soon_cores = lop_soon_cores();

    const std::uint32_t target =
        std::clamp(autoscaler_.target_machines(obs), config_.min_machines,
                   config_.max_machines);
    const std::uint32_t current = obs.supply_machines + pending_;
    if (target > current) {
      const std::uint32_t add = target - current;
      pending_ += add;
      for (std::uint32_t i = 0; i < add; ++i) {
        sim_.schedule_after(config_.provisioning_delay, [this] {
          --pending_;
          add_machine();
          place();
        });
      }
    } else if (target < current) {
      std::uint32_t to_remove = current - target;
      // Prefer draining idle machines now; the rest drain on idle.
      for (std::size_t mi = 0; mi < machines_.size() && to_remove > 0;
           ++mi) {
        if (machines_[mi].alive &&
            machines_[mi].free == config_.cores_per_machine &&
            alive_machines() > config_.min_machines) {
          remove_machine(mi);
          --to_remove;
        }
      }
      drain_quota_ = to_remove;
    }

    const double supply =
        static_cast<double>(alive_machines()) * config_.cores_per_machine;
    result_.series.push_back(SupplyDemandPoint{sim_.now(), demand, supply});
    if (obs_ != nullptr) {
      supply_gauge_->set(supply);
      demand_gauge_->set(demand);
      obs_->tracer.end("autoscale.tick", "autoscale", sim_.now());
    }

    if (completed_jobs_ < jobs_.size()) {
      sim_.schedule_after(config_.interval, [this] { tick(); });
    }
  }

  void arrive(std::size_t ji) {
    auto& js = jobs_[ji];
    js.arrived = true;
    for (std::size_t ti = 0; ti < js.tasks.size(); ++ti) {
      if (js.tasks[ti].remaining_deps == 0) {
        js.tasks[ti].status = TaskStatus::kEligible;
        js.tasks[ti].eligible_time = sim_.now();
        eligible_.emplace_back(ji, ti);
      }
    }
    place();
  }

  void crash(const fault::FaultEvent& e) {
    // Pick the victim among currently alive machines (deterministic:
    // target reduced modulo the alive count, in slot order).
    std::vector<std::size_t> alive;
    for (std::size_t mi = 0; mi < machines_.size(); ++mi)
      if (machines_[mi].alive) alive.push_back(mi);
    if (alive.empty()) return;
    const std::size_t mi = alive[e.target % alive.size()];

    // Kill every task running on it; victims re-queue and rerun from
    // scratch. The capacity loss itself heals through the autoscaler's
    // ordinary provisioning path.
    crash_events_.push_back(e);
    const auto blame = static_cast<std::int32_t>(crash_events_.size() - 1);
    for (std::size_t ji = 0; ji < jobs_.size(); ++ji) {
      auto& js = jobs_[ji];
      for (std::size_t ti = 0; ti < js.tasks.size(); ++ti) {
        auto& ts = js.tasks[ti];
        if (ts.status != TaskStatus::kRunning || ts.machine != mi) continue;
        ts.completion.cancel();
        ts.status = TaskStatus::kEligible;
        ts.eligible_time = sim_.now();
        ts.blame = blame;
        eligible_.emplace_back(ji, ti);
        ++result_.tasks_requeued;
      }
    }
    remove_machine(mi);
    place();
  }

  void place() {
    // FCFS: by job submit time, then eligibility, then ids. The eligible
    // deque is appended in that order already except across jobs; sort to
    // be exact.
    std::sort(eligible_.begin(), eligible_.end(),
              [this](const auto& a, const auto& b) {
                const double sa = jobs_[a.first].job->submit_time;
                const double sb = jobs_[b.first].job->submit_time;
                if (sa != sb) return sa < sb;
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;
              });
    for (auto it = eligible_.begin(); it != eligible_.end();) {
      const auto [ji, ti] = *it;
      const std::uint32_t cores = jobs_[ji].job->tasks[ti].cores;
      std::size_t target = machines_.size();
      for (std::size_t mi = 0; mi < machines_.size(); ++mi) {
        if (machines_[mi].alive && machines_[mi].free >= cores) {
          target = mi;
          break;
        }
      }
      if (target == machines_.size()) {
        ++it;  // no capacity; keep FCFS order but try narrower tasks
        continue;
      }
      it = eligible_.erase(it);
      start_task(ji, ti, target);
    }
  }

  void start_task(std::size_t ji, std::size_t ti, std::size_t mi) {
    auto& js = jobs_[ji];
    const auto& task = js.job->tasks[ti];
    auto& ts = js.tasks[ti];
    ts.status = TaskStatus::kRunning;
    ts.expected_finish = sim_.now() + task.runtime;
    ts.machine = static_cast<std::uint32_t>(mi);
    if (js.start < 0.0) js.start = sim_.now();
    machines_[mi].free -= task.cores;
    ts.completion = sim_.schedule_after(
        task.runtime, [this, ji, ti, mi] { finish_task(ji, ti, mi); });
    if (ts.blame >= 0) {
      // A crash victim restarted on a surviving machine: recovered.
      if (injector_.has_value())
        injector_->recovered(crash_events_[static_cast<std::size_t>(ts.blame)],
                             sim_.now());
      ts.blame = -1;
    }
  }

  void finish_task(std::size_t ji, std::size_t ti, std::size_t mi) {
    auto& js = jobs_[ji];
    const auto& task = js.job->tasks[ti];
    js.tasks[ti].status = TaskStatus::kDone;
    machines_[mi].free += task.cores;

    // Drain-on-idle if the autoscaler asked for fewer machines.
    if (drain_quota_ > 0 && machines_[mi].free == config_.cores_per_machine &&
        alive_machines() > config_.min_machines) {
      remove_machine(mi);
      --drain_quota_;
    }

    for (std::size_t other = 0; other < js.job->tasks.size(); ++other) {
      if (js.tasks[other].status != TaskStatus::kPending) continue;
      const auto& deps = js.job->tasks[other].deps;
      if (std::find(deps.begin(), deps.end(),
                    static_cast<workflow::TaskId>(ti)) == deps.end())
        continue;
      if (--js.tasks[other].remaining_deps == 0) {
        js.tasks[other].status = TaskStatus::kEligible;
        js.tasks[other].eligible_time = sim_.now();
        eligible_.emplace_back(ji, other);
      }
    }

    if (--js.remaining == 0) {
      js.finish = sim_.now();
      ++completed_jobs_;
    }
    place();
  }

  void finalize() {
    std::vector<double> slowdowns;
    std::vector<double> responses;
    for (const auto& js : jobs_) {
      if (js.finish < 0.0) continue;
      sched::JobStats stats;
      stats.id = js.job->id;
      stats.submit = js.job->submit_time;
      stats.start = js.start;
      stats.finish = js.finish;
      stats.critical_path = js.job->critical_path();
      result_.makespan = std::max(result_.makespan, js.finish);
      slowdowns.push_back(stats.slowdown());
      responses.push_back(stats.response());
      if (config_.sla_factor > 0.0) {
        ++result_.deadline_total;
        if (js.finish > js.job->submit_time +
                            config_.sla_factor * stats.critical_path)
          ++result_.deadline_violations;
      }
      result_.jobs.push_back(stats);
    }
    result_.mean_slowdown = stats::mean(slowdowns);
    result_.median_slowdown = stats::quantile(slowdowns, 0.5);
    result_.mean_response = stats::mean(responses);
    for (const double s : slowdowns) result_.slowdown_digest.add(s);
    if (obs_ != nullptr)
      obs_->metrics.digest("autoscale.job_slowdown")
          .merge(result_.slowdown_digest);
    for (auto& m : machines_) {
      if (m.alive) {
        result_.rentals.push_back(result_.makespan - m.rental_start);
        m.alive = false;
      }
    }
    result_.metrics = compute_metrics(result_.series, result_.makespan);
    if (injector_.has_value()) {
      result_.faults_injected = injector_->injected();
      result_.faults_recovered = injector_->recovered_count();
    }
  }

  Autoscaler& autoscaler_;
  ElasticConfig config_;
  sim::Simulation sim_;
  std::vector<JobState> jobs_;
  std::vector<MachineInst> machines_;
  std::deque<std::pair<std::size_t, std::size_t>> eligible_;
  std::uint32_t pending_ = 0;
  std::uint32_t drain_quota_ = 0;
  std::size_t completed_jobs_ = 0;
  std::optional<fault::Injector> injector_;
  std::vector<fault::FaultEvent> crash_events_;
  ElasticResult result_;

  // Instrumentation plane; metric handles are resolved once in the ctor so
  // the hot path never does a name lookup.
  obs::Observability* obs_ = nullptr;
  obs::Counter* ticks_ = nullptr;
  obs::Counter* added_ = nullptr;
  obs::Counter* removed_ = nullptr;
  obs::Gauge* supply_gauge_ = nullptr;
  obs::Gauge* demand_gauge_ = nullptr;
};

}  // namespace

ElasticResult run_elastic(const workflow::Workload& workload,
                          Autoscaler& autoscaler,
                          const ElasticConfig& config) {
  ElasticEngine engine(workload, autoscaler, config);
  return engine.run();
}

}  // namespace atlarge::autoscale
