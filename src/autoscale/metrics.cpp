#include "atlarge/autoscale/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace atlarge::autoscale {

const std::vector<std::string>& ElasticityMetrics::names() {
  static const std::vector<std::string> kNames = {
      "accuracy_over",      "accuracy_under",      "norm_accuracy_over",
      "norm_accuracy_under", "timeshare_over",     "timeshare_under",
      "instability",        "jitter_per_hour",     "avg_supply",
      "avg_demand"};
  return kNames;
}

std::vector<double> ElasticityMetrics::values() const {
  return {accuracy_over,      accuracy_under,      norm_accuracy_over,
          norm_accuracy_under, timeshare_over,     timeshare_under,
          instability,        jitter_per_hour,     avg_supply,
          avg_demand};
}

ElasticityMetrics compute_metrics(std::span<const SupplyDemandPoint> series,
                                  double horizon) {
  ElasticityMetrics m;
  if (series.empty()) return m;
  const double start = series.front().time;
  const double window = horizon - start;
  if (window <= 0.0) return m;

  double over_integral = 0.0;
  double under_integral = 0.0;
  double over_time = 0.0;
  double under_time = 0.0;
  double supply_integral = 0.0;
  double demand_integral = 0.0;
  std::size_t opposite_moves = 0;
  std::size_t moves = 0;
  std::size_t direction_changes = 0;
  int last_direction = 0;

  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& p = series[i];
    const double next_time =
        i + 1 < series.size() ? std::min(series[i + 1].time, horizon)
                              : horizon;
    const double dt = std::max(next_time - p.time, 0.0);
    const double over = std::max(p.supply - p.demand, 0.0);
    const double under = std::max(p.demand - p.supply, 0.0);
    over_integral += over * dt;
    under_integral += under * dt;
    if (p.supply > p.demand) over_time += dt;
    if (p.supply < p.demand) under_time += dt;
    supply_integral += p.supply * dt;
    demand_integral += p.demand * dt;

    if (i > 0) {
      const double d_supply = p.supply - series[i - 1].supply;
      const double d_demand = p.demand - series[i - 1].demand;
      if (d_supply != 0.0 || d_demand != 0.0) {
        ++moves;
        if (d_supply * d_demand < 0.0) ++opposite_moves;
      }
      if (d_supply != 0.0) {
        const int direction = d_supply > 0.0 ? 1 : -1;
        if (last_direction != 0 && direction != last_direction)
          ++direction_changes;
        last_direction = direction;
      }
    }
  }

  m.accuracy_over = over_integral / window;
  m.accuracy_under = under_integral / window;
  m.avg_supply = supply_integral / window;
  m.avg_demand = demand_integral / window;
  if (m.avg_demand > 0.0) {
    m.norm_accuracy_over = m.accuracy_over / m.avg_demand;
    m.norm_accuracy_under = m.accuracy_under / m.avg_demand;
  }
  m.timeshare_over = over_time / window;
  m.timeshare_under = under_time / window;
  m.instability = moves == 0 ? 0.0
                             : static_cast<double>(opposite_moves) /
                                   static_cast<double>(moves);
  m.jitter_per_hour =
      static_cast<double>(direction_changes) / (window / 3600.0);
  return m;
}

}  // namespace atlarge::autoscale
