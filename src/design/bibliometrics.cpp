#include "atlarge/design/bibliometrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "atlarge/stats/rng.hpp"

namespace atlarge::design {

double KeywordTrend::probability(int year) const {
  const double z = rate * static_cast<double>(year - midpoint_year);
  return floor + (ceil - floor) / (1.0 + std::exp(-z));
}

CorpusConfig paper_corpus_config() {
  CorpusConfig config;
  config.venues = {
      {"ICDCS", 1981, 70, 0.012},   {"SC", 1988, 80, 0.015},
      {"HPDC", 1992, 45, 0.010},    {"SOSP/OSDI", 1987, 35, 0.008},
      {"NSDI", 2004, 40, 0.020},    {"EuroSys", 2006, 35, 0.018},
      {"CCGrid", 2001, 60, 0.012},  {"Middleware", 1998, 30, 0.010},
  };
  config.keywords = {
      // "design" rises markedly after 2000 — the Figure 2 trend.
      {"design", 0.06, 0.38, 0.30, 2004},
      {"performance", 0.25, 0.45, 0.10, 1995},
      {"scalability", 0.02, 0.30, 0.25, 2002},
      {"cloud", 0.00, 0.35, 0.60, 2011},
      {"ecosystem", 0.00, 0.10, 0.45, 2015},
  };
  config.from_year = 1980;
  config.to_year = 2018;
  return config;
}

Corpus generate_corpus(const CorpusConfig& config) {
  if (config.keywords.size() > 32)
    throw std::invalid_argument("generate_corpus: > 32 keywords");
  Corpus corpus;
  corpus.config = config;
  stats::Rng rng(config.seed);
  for (std::uint32_t vi = 0; vi < config.venues.size(); ++vi) {
    const auto& venue = config.venues[vi];
    for (int year = std::max(config.from_year, venue.first_year);
         year <= config.to_year; ++year) {
      const double growth = 1.0 + venue.growth_per_year *
                                      static_cast<double>(year -
                                                          venue.first_year);
      const auto count = static_cast<std::size_t>(
          std::max(1.0, std::round(static_cast<double>(
                                       venue.articles_per_year) *
                                   growth)));
      for (std::size_t a = 0; a < count; ++a) {
        CorpusArticle article;
        article.venue = vi;
        article.year = year;
        for (std::uint32_t ki = 0; ki < config.keywords.size(); ++ki) {
          if (rng.bernoulli(config.keywords[ki].probability(year)))
            article.keyword_mask |= (1u << ki);
        }
        corpus.articles.push_back(article);
      }
    }
  }
  return corpus;
}

double keyword_presence(const Corpus& corpus, std::uint32_t venue,
                        std::uint32_t keyword, int from_year, int to_year) {
  std::size_t total = 0;
  std::size_t with = 0;
  for (const auto& a : corpus.articles) {
    if (a.venue != venue || a.year < from_year || a.year > to_year) continue;
    ++total;
    if (a.keyword_mask & (1u << keyword)) ++with;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(with) / static_cast<double>(total);
}

BlockCounts design_articles_per_block(const Corpus& corpus) {
  BlockCounts blocks;
  const auto& config = corpus.config;

  std::uint32_t design_bit = 0;
  bool found = false;
  for (std::uint32_t ki = 0; ki < config.keywords.size(); ++ki) {
    if (config.keywords[ki].keyword == "design") {
      design_bit = ki;
      found = true;
      break;
    }
  }
  if (!found)
    throw std::invalid_argument(
        "design_articles_per_block: corpus lacks a 'design' keyword");

  for (int y = config.from_year; y <= config.to_year; y += 5)
    blocks.block_start_years.push_back(y);
  blocks.counts.assign(config.venues.size(),
                       std::vector<std::size_t>(
                           blocks.block_start_years.size(), 0));
  for (const auto& a : corpus.articles) {
    if (!(a.keyword_mask & (1u << design_bit))) continue;
    const auto block = static_cast<std::size_t>((a.year - config.from_year) /
                                                5);
    if (block < blocks.block_start_years.size())
      ++blocks.counts[a.venue][block];
  }
  return blocks;
}

}  // namespace atlarge::design
