#include "atlarge/design/design_space.hpp"

#include <cmath>
#include <stdexcept>

namespace atlarge::design {

DesignProblem::DesignProblem(std::size_t dims, std::uint32_t options,
                             std::size_t k, double satisficing_threshold,
                             std::uint64_t seed)
    : k_(std::min(k, dims > 0 ? dims - 1 : 0)),
      threshold_(satisficing_threshold) {
  if (dims == 0) throw std::invalid_argument("DesignProblem: zero dims");
  if (options < 2)
    throw std::invalid_argument("DesignProblem: need >= 2 options");
  stats::Rng rng(seed);
  dims_.reserve(dims);
  for (std::size_t d = 0; d < dims; ++d)
    dims_.push_back(Dimension{"dim" + std::to_string(d), options});

  neighbors_.resize(dims);
  table_.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    // K distinct interaction partners (excluding d itself), drawn
    // deterministically.
    while (neighbors_[d].size() < k_) {
      const auto cand = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(dims) - 1));
      if (cand == d) continue;
      bool seen = false;
      for (std::size_t existing : neighbors_[d]) {
        if (existing == cand) {
          seen = true;
          break;
        }
      }
      if (!seen) neighbors_[d].push_back(cand);
    }
    std::size_t entries = options;
    for (std::size_t i = 0; i < k_; ++i) entries *= options;
    table_[d].resize(entries);
    for (auto& cell : table_[d]) cell = rng.uniform();
  }
}

double DesignProblem::contribution(std::size_t dim,
                                   const DesignPoint& point) const {
  std::size_t code = point[dim];
  std::size_t radix = dims_[dim].options;
  for (std::size_t nb : neighbors_[dim]) {
    code += point[nb] * radix;
    radix *= dims_[nb].options;
  }
  return table_[dim][code];
}

double DesignProblem::quality(const DesignPoint& point) const {
  if (point.size() != dims_.size())
    throw std::invalid_argument("quality: arity mismatch");
  for (std::size_t d = 0; d < point.size(); ++d) {
    if (point[d] >= dims_[d].options)
      throw std::invalid_argument("quality: option out of range");
  }
  double total = 0.0;
  for (std::size_t d = 0; d < dims_.size(); ++d)
    total += contribution(d, point);
  return total / static_cast<double>(dims_.size());
}

double DesignProblem::space_size() const noexcept {
  double size = 1.0;
  for (const auto& d : dims_) size *= static_cast<double>(d.options);
  return size;
}

DesignPoint DesignProblem::random_point(stats::Rng& rng) const {
  DesignPoint point(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    point[d] = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(dims_[d].options) - 1));
  }
  return point;
}

DesignProblem DesignProblem::evolve(double churn, std::uint64_t seed) const {
  DesignProblem next = *this;
  stats::Rng rng(seed);
  for (std::size_t d = 0; d < next.table_.size(); ++d) {
    if (!rng.bernoulli(churn)) continue;  // this dimension carries over
    for (auto& cell : next.table_[d]) cell = rng.uniform();
  }
  return next;
}

}  // namespace atlarge::design
