#include "atlarge/design/bdc.hpp"

namespace atlarge::design {

std::string to_string(Stage s) {
  switch (s) {
    case Stage::kFormulateRequirements: return "formulate-requirements";
    case Stage::kUnderstandAlternatives: return "understand-alternatives";
    case Stage::kBootstrapCreative: return "bootstrap-creative";
    case Stage::kHighAndLowLevelDesign: return "high-low-design";
    case Stage::kImplement: return "implement";
    case Stage::kConceptualAnalysis: return "conceptual-analysis";
    case Stage::kExperimentalAnalysis: return "experimental-analysis";
    case Stage::kDisseminate: return "disseminate";
  }
  return "?";
}

const std::array<Stage, kStageCount>& all_stages() {
  static const std::array<Stage, kStageCount> kStages = {
      Stage::kFormulateRequirements, Stage::kUnderstandAlternatives,
      Stage::kBootstrapCreative,     Stage::kHighAndLowLevelDesign,
      Stage::kImplement,             Stage::kConceptualAnalysis,
      Stage::kExperimentalAnalysis,  Stage::kDisseminate};
  return kStages;
}

std::string to_string(StoppingCriterion c) {
  switch (c) {
    case StoppingCriterion::kSatisficing: return "satisficing";
    case StoppingCriterion::kPortfolio: return "portfolio";
    case StoppingCriterion::kSystematicDesign: return "systematic-design";
    case StoppingCriterion::kSpaceExhaustion: return "space-exhaustion";
    case StoppingCriterion::kResourcesExhausted: return "resources-exhausted";
  }
  return "?";
}

BasicDesignCycle::BasicDesignCycle(BdcConfig config) : config_(config) {}

void BasicDesignCycle::on(Stage stage, StageHandler handler) {
  handlers_[static_cast<std::size_t>(stage) - 1] = std::move(handler);
}

void BasicDesignCycle::skip_when(Stage stage, SkipPredicate predicate) {
  skips_[static_cast<std::size_t>(stage) - 1] = std::move(predicate);
}

std::optional<StoppingCriterion> BasicDesignCycle::check_stop(
    const BdcContext& ctx) const {
  // Criterion 4: the whole space has been enumerated.
  if (ctx.space_size > 0 && ctx.space_explored >= ctx.space_size)
    return StoppingCriterion::kSpaceExhaustion;
  // Criteria 1-3 differ only in how many answers the client asked for.
  if (ctx.designs_found >= config_.designs_target &&
      ctx.best_quality >= config_.satisficing_quality) {
    if (config_.designs_target <= 1) return StoppingCriterion::kSatisficing;
    if (config_.designs_target <= 5) return StoppingCriterion::kPortfolio;
    return StoppingCriterion::kSystematicDesign;
  }
  // Criterion 5: out of iterations.
  if (ctx.iteration >= config_.max_iterations)
    return StoppingCriterion::kResourcesExhausted;
  return std::nullopt;
}

BdcReport BasicDesignCycle::run(BdcContext ctx) {
  BdcReport report;
  while (true) {
    if (const auto stop = check_stop(ctx)) {
      report.stopped_by = *stop;
      break;
    }
    ++ctx.iteration;
    for (Stage stage : all_stages()) {
      const std::size_t idx = static_cast<std::size_t>(stage) - 1;
      const bool skip =
          !handlers_[idx] || (skips_[idx] && skips_[idx](ctx));
      report.visits.push_back(StageVisit{ctx.iteration, stage, skip});
      if (!skip) handlers_[idx](ctx);
    }
  }
  report.iterations = ctx.iteration;
  report.best_quality = ctx.best_quality;
  report.designs_found = ctx.designs_found;
  report.artifacts = std::move(ctx.artifacts);
  return report;
}

}  // namespace atlarge::design
