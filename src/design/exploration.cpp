#include "atlarge/design/exploration.hpp"

#include <algorithm>
#include <stdexcept>

namespace atlarge::design {
namespace {

/// The search domain a process is allowed to touch: which dimensions may
/// change and how many options each exposes.
struct Domain {
  std::vector<std::size_t> free_dims;
  std::vector<std::uint32_t> allowed;  // per dimension, <= space options
  DesignPoint base;                    // values for pinned dimensions

  DesignPoint random_point(stats::Rng& rng) const {
    DesignPoint point = base;
    for (std::size_t d : free_dims) {
      point[d] = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(allowed[d]) - 1));
    }
    return point;
  }

  /// Mutates one free dimension to a different allowed option; returns
  /// false when no move exists (all axes have one option).
  bool neighbor(DesignPoint& point, stats::Rng& rng) const {
    if (free_dims.empty()) return false;
    for (int tries = 0; tries < 16; ++tries) {
      const std::size_t d = free_dims[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(free_dims.size()) - 1))];
      if (allowed[d] < 2) continue;
      const auto next = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(allowed[d]) - 1));
      if (next != point[d]) {
        point[d] = next;
        return true;
      }
    }
    return false;
  }
};

Domain full_domain(const std::vector<std::uint32_t>& options) {
  Domain domain;
  domain.base.assign(options.size(), 0);
  domain.allowed = options;
  for (std::size_t d = 0; d < options.size(); ++d)
    domain.free_dims.push_back(d);
  return domain;
}

Landscape problem_landscape(const DesignProblem& problem) {
  Landscape space;
  space.options.resize(problem.dimensions());
  for (std::size_t d = 0; d < problem.dimensions(); ++d)
    space.options[d] = problem.options(d);
  space.satisficing_threshold = problem.satisficing_threshold();
  space.quality = [&problem](const DesignPoint& p) {
    return problem.quality(p);
  };
  return space;
}

/// Restart hill climbing within the domain. Shared by all processes so
/// outcome differences are attributable to the process alone.
ExplorationTrace run_search(const Landscape& space, const Domain& domain,
                            std::string process,
                            const ExplorationConfig& config) {
  if (!space.quality)
    throw std::invalid_argument("exploration: Landscape::quality unset");
  ExplorationTrace trace;
  trace.process = std::move(process);
  stats::Rng rng(config.seed);

  DesignPoint current;
  double current_q = 0.0;
  bool restart_satisficed = false;
  std::size_t evals_since_restart = 0;

  const auto satisfices = [&](double q) {
    return q >= space.satisficing_threshold;
  };

  const auto evaluate = [&](const DesignPoint& p) {
    ++trace.evaluations_used;
    ++evals_since_restart;
    return space.quality(p);
  };

  const auto restart = [&] {
    if (trace.evaluations_used > 0 && !restart_satisficed) ++trace.failures;
    current = domain.random_point(rng);
    current_q = evaluate(current);
    restart_satisficed = false;
    evals_since_restart = 1;
  };

  const auto record_if_best = [&] {
    if (trace.best_point.empty() || current_q > trace.best_quality) {
      trace.best_quality = current_q;
      trace.best_point = current;
      trace.attempts.push_back(Attempt{trace.evaluations_used, current_q,
                                       satisfices(current_q)});
    }
    if (satisfices(current_q) && !restart_satisficed) {
      restart_satisficed = true;
      ++trace.satisficing_designs;
      if (trace.first_satisficing_at == 0)
        trace.first_satisficing_at = trace.evaluations_used;
    }
  };

  restart();
  record_if_best();
  while (trace.evaluations_used < config.evaluation_budget) {
    if (evals_since_restart >= config.restart_period) {
      restart();
      record_if_best();
      continue;
    }
    DesignPoint candidate = current;
    if (!domain.neighbor(candidate, rng)) break;  // degenerate domain
    const double q = evaluate(candidate);
    if (q >= current_q) {
      current = std::move(candidate);
      current_q = q;
      record_if_best();
    }
  }
  if (!restart_satisficed) ++trace.failures;
  return trace;
}

}  // namespace

ExplorationTrace explore_free(const Landscape& space,
                              const ExplorationConfig& config) {
  return run_search(space, full_domain(space.options), "free", config);
}

ExplorationTrace explore_free(const DesignProblem& problem,
                              const ExplorationConfig& config) {
  const Landscape space = problem_landscape(problem);
  return run_search(space, full_domain(space.options), "free", config);
}

ExplorationTrace explore_fix_what(const DesignProblem& problem,
                                  const std::vector<std::size_t>& fixed_dims,
                                  const DesignPoint& fixed_values,
                                  const ExplorationConfig& config) {
  if (fixed_dims.size() != fixed_values.size())
    throw std::invalid_argument("explore_fix_what: dims/values mismatch");
  const Landscape space = problem_landscape(problem);
  Domain domain = full_domain(space.options);
  for (std::size_t i = 0; i < fixed_dims.size(); ++i) {
    const std::size_t d = fixed_dims[i];
    if (d >= problem.dimensions())
      throw std::invalid_argument("explore_fix_what: dim out of range");
    domain.base[d] = fixed_values[i];
    domain.free_dims.erase(std::remove(domain.free_dims.begin(),
                                       domain.free_dims.end(), d),
                           domain.free_dims.end());
  }
  return run_search(space, domain, "fix-the-what", config);
}

ExplorationTrace explore_fix_how(const DesignProblem& problem,
                                 const std::vector<std::uint32_t>&
                                     allowed_options,
                                 const ExplorationConfig& config) {
  if (allowed_options.size() != problem.dimensions())
    throw std::invalid_argument("explore_fix_how: arity mismatch");
  const Landscape space = problem_landscape(problem);
  Domain domain = full_domain(space.options);
  for (std::size_t d = 0; d < allowed_options.size(); ++d) {
    if (allowed_options[d] == 0 || allowed_options[d] > problem.options(d))
      throw std::invalid_argument("explore_fix_how: bad allowed count");
    domain.allowed[d] = allowed_options[d];
  }
  return run_search(space, domain, "fix-the-how", config);
}

ExplorationTrace explore_co_evolving(DesignProblem problem,
                                     const ExplorationConfig& config) {
  ExplorationTrace trace;
  trace.process = "co-evolving";
  stats::Rng rng(config.seed);
  Domain domain;
  {
    std::vector<std::uint32_t> options(problem.dimensions());
    for (std::size_t d = 0; d < problem.dimensions(); ++d)
      options[d] = problem.options(d);
    domain = full_domain(options);
  }

  DesignPoint current = domain.random_point(rng);
  double current_q = problem.quality(current);
  ++trace.evaluations_used;
  double best_q = current_q;
  std::size_t since_improvement = 0;
  std::size_t evals_since_restart = 1;
  bool epoch_satisficed = false;
  std::uint64_t evolve_seed = config.seed ^ 0xc0ffee;

  const auto note = [&] {
    if (trace.best_point.empty() || current_q > trace.best_quality) {
      trace.best_quality = current_q;
      trace.best_point = current;
      trace.attempts.push_back(Attempt{trace.evaluations_used, current_q,
                                       problem.satisfices(current)});
    }
    if (problem.satisfices(current) && !epoch_satisficed) {
      epoch_satisficed = true;
      ++trace.satisficing_designs;
      if (trace.first_satisficing_at == 0)
        trace.first_satisficing_at = trace.evaluations_used;
    }
  };
  note();

  while (trace.evaluations_used < config.evaluation_budget) {
    if (since_improvement >= config.stall_limit) {
      // Stuck: evolve the problem (Figure 7, Problem 1 -> Problem 2),
      // keeping the incumbent design as the seed in the new landscape.
      problem = problem.evolve(config.evolve_churn, evolve_seed++);
      ++trace.problem_evolutions;
      current_q = problem.quality(current);
      ++trace.evaluations_used;
      best_q = current_q;
      since_improvement = 0;
      epoch_satisficed = false;
      note();
      continue;
    }
    if (evals_since_restart >= config.restart_period) {
      if (!epoch_satisficed) ++trace.failures;
      current = domain.random_point(rng);
      current_q = problem.quality(current);
      ++trace.evaluations_used;
      evals_since_restart = 1;
      note();
      continue;
    }
    DesignPoint candidate = current;
    if (!domain.neighbor(candidate, rng)) break;
    const double q = problem.quality(candidate);
    ++trace.evaluations_used;
    ++evals_since_restart;
    if (q >= current_q) {
      if (q > best_q) {
        best_q = q;
        since_improvement = 0;
      } else {
        ++since_improvement;
      }
      current = std::move(candidate);
      current_q = q;
      note();
    } else {
      ++since_improvement;
    }
  }
  return trace;
}

}  // namespace atlarge::design
