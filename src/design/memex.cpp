#include "atlarge/design/memex.hpp"

#include <algorithm>
#include <stdexcept>

namespace atlarge::design {

DecisionId ProvenanceGraph::record(DecisionRecord record) {
  for (DecisionId dep : record.supersedes) {
    if (dep >= records_.size())
      throw std::invalid_argument(
          "ProvenanceGraph: supersedes unknown decision");
  }
  record.id = static_cast<DecisionId>(records_.size());
  records_.push_back(std::move(record));
  return records_.back().id;
}

const DecisionRecord& ProvenanceGraph::get(DecisionId id) const {
  return records_.at(id);
}

std::vector<DecisionId> ProvenanceGraph::active() const {
  std::vector<bool> superseded(records_.size(), false);
  for (const auto& r : records_) {
    for (DecisionId dep : r.supersedes) superseded[dep] = true;
  }
  std::vector<DecisionId> out;
  for (DecisionId id = 0; id < records_.size(); ++id) {
    if (!superseded[id]) out.push_back(id);
  }
  return out;
}

std::vector<DecisionId> ProvenanceGraph::lineage(DecisionId id) const {
  if (id >= records_.size())
    throw std::invalid_argument("ProvenanceGraph: unknown decision");
  // DFS through supersedes edges; ids are append-ordered, so sorting
  // ascending yields oldest-first.
  std::vector<bool> seen(records_.size(), false);
  std::vector<DecisionId> stack{id};
  std::vector<DecisionId> out;
  while (!stack.empty()) {
    const DecisionId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    out.push_back(cur);
    for (DecisionId dep : records_[cur].supersedes) stack.push_back(dep);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ProvenanceGraph::revision_depth(DecisionId id) const {
  return lineage(id).size();
}

std::vector<DecisionId> ProvenanceGraph::by_author(
    const std::string& author) const {
  std::vector<DecisionId> out;
  for (const auto& r : records_) {
    if (r.author == author) out.push_back(r.id);
  }
  return out;
}

bool Memex::add(MemexEntry entry) {
  if (find(entry.system) != nullptr) return false;
  entries_.push_back(std::move(entry));
  return true;
}

const MemexEntry* Memex::find(const std::string& system) const {
  for (const auto& e : entries_) {
    if (e.system == system) return &e;
  }
  return nullptr;
}

std::vector<std::string> Memex::active_between(int from, int to) const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (e.first_year <= to && e.last_year >= from) out.push_back(e.system);
  }
  return out;
}

std::size_t Memex::decisions_preserved() const noexcept {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.provenance.size();
  return total;
}

Memex paper_memex() {
  Memex memex;

  {
    MemexEntry p2p;
    p2p.system = "BTWorld/Tribler";
    p2p.first_year = 2004;
    p2p.last_year = 2014;
    p2p.trace_dataset_ids = {"p2p-suprnova-2004", "p2p-piratebay-2005",
                             "p2p-btworld-2010"};
    const auto probe = p2p.provenance.record(
        {0, "per-swarm probing (MultiProbe)",
         "Internet-level correlation required per-peer visibility",
         {"tracker scraping only"}, {}, 2006, "AtLarge"});
    p2p.provenance.record(
        {0, "aggregate tracker scraping (BTWorld)",
         "global scale (10M swarms) made per-peer probing infeasible; "
         "GDPR later forbade Internet tracing",
         {"per-peer probing", "client instrumentation"},
         {probe}, 2010, "AtLarge"});
    p2p.provenance.record(
        {0, "2fast: group-donated upload credit",
         "asymmetric ADSL leaves download pipes idle; groups convert "
         "idle upload into collector bandwidth without immediate repay",
         {"tit-for-tat only", "central credit bank"}, {}, 2006,
         "AtLarge"});
    memex.add(std::move(p2p));
  }

  {
    MemexEntry ga;
    ga.system = "Graphalytics";
    ga.first_year = 2014;
    ga.last_year = 2018;
    ga.trace_dataset_ids = {"graph-datagen-ldbc"};
    const auto pad = ga.provenance.record(
        {0, "benchmark spans the full PAD triangle",
         "the PAD study showed performance is an interaction effect; "
         "single-algorithm or single-dataset benchmarks mislead",
         {"single-platform suites", "algorithm-only kernels"}, {}, 2014,
         "AtLarge+LDBC"});
    ga.provenance.record(
        {0, "HPAD: add heterogeneous hardware as a dimension",
         "KNL/GPU results showed the PAD law holds only in special "
         "situations on heterogeneous hardware",
         {"keep PAD as-is"}, {pad}, 2018, "AtLarge"});
    memex.add(std::move(ga));
  }

  {
    MemexEntry ps;
    ps.system = "Portfolio-Scheduler";
    ps.first_year = 2013;
    ps.last_year = 2018;
    ps.trace_dataset_ids = {"grid-workloads-archive"};
    const auto all = ps.provenance.record(
        {0, "simulate every policy each interval",
         "no single policy is consistently best; online what-if "
         "simulation tracks the incumbent best",
         {"static best policy", "random policy rotation"}, {}, 2013,
         "AtLarge"});
    ps.provenance.record(
        {0, "active-set limiting",
         "simulation time grows with #policies x queue length; the "
         "full portfolio could no longer run online",
         {"faster simulator", "coarser snapshots"}, {all}, 2013,
         "AtLarge"});
    memex.add(std::move(ps));
  }

  return memex;
}

}  // namespace atlarge::design
