#include "atlarge/design/review.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "atlarge/stats/rng.hpp"

namespace atlarge::design {

std::string to_string(ReviewAspect a) {
  switch (a) {
    case ReviewAspect::kMerit: return "merit";
    case ReviewAspect::kQuality: return "quality";
    case ReviewAspect::kTopic: return "topic";
  }
  return "?";
}

double ArticleReview::aspect(ReviewAspect a) const noexcept {
  switch (a) {
    case ReviewAspect::kMerit: return merit;
    case ReviewAspect::kQuality: return quality;
    case ReviewAspect::kTopic: return topic;
  }
  return 0.0;
}

std::vector<ArticleReview> generate_reviews(const ReviewModelConfig& config) {
  stats::Rng rng(config.seed);
  std::vector<ArticleReview> reviews;
  reviews.reserve(config.articles);

  const auto reviewer_score = [&](double latent) {
    const double noisy = latent + rng.normal(0.0, config.reviewer_noise);
    return std::clamp(std::round(noisy), 1.0, 4.0);
  };

  for (std::size_t i = 0; i < config.articles; ++i) {
    ArticleReview r;
    r.is_design = rng.bernoulli(config.design_fraction);
    const double latent_quality =
        rng.normal(r.is_design ? config.design_mean : config.non_design_mean,
                   config.latent_stddev);
    // Merit correlates with quality but adds presentation/impact spread.
    const double latent_merit =
        0.7 * latent_quality +
        0.3 * rng.normal(r.is_design ? config.design_mean
                                     : config.non_design_mean,
                         config.latent_stddev);
    const double latent_topic = rng.normal(config.topic_mean, 0.4);

    const auto reviewers = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.reviewers_min),
        static_cast<std::int64_t>(config.reviewers_max)));
    double merit_sum = 0.0;
    double quality_sum = 0.0;
    double topic_sum = 0.0;
    for (std::size_t k = 0; k < reviewers; ++k) {
      merit_sum += reviewer_score(latent_merit);
      quality_sum += reviewer_score(latent_quality);
      topic_sum += reviewer_score(latent_topic);
    }
    r.merit = merit_sum / static_cast<double>(reviewers);
    r.quality = quality_sum / static_cast<double>(reviewers);
    r.topic = topic_sum / static_cast<double>(reviewers);
    reviews.push_back(r);
  }

  // Accept the top accept_rate by merit (ties broken by quality).
  std::vector<std::size_t> order(reviews.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (reviews[a].merit != reviews[b].merit)
      return reviews[a].merit > reviews[b].merit;
    return reviews[a].quality > reviews[b].quality;
  });
  const auto accepted =
      static_cast<std::size_t>(std::round(config.accept_rate *
                                          static_cast<double>(reviews.size())));
  for (std::size_t k = 0; k < accepted && k < order.size(); ++k)
    reviews[order[k]].accepted = true;
  return reviews;
}

atlarge::stats::ViolinGroup violins_by_category(
    const std::vector<ArticleReview>& reviews, ReviewAspect aspect) {
  atlarge::stats::ViolinGroup group;
  group.title = "Review scores: " + to_string(aspect);

  struct Category {
    std::string label;
    std::function<bool(const ArticleReview&)> member;
  };
  const std::vector<Category> categories = {
      {"design", [](const ArticleReview& r) { return r.is_design; }},
      {"non-design", [](const ArticleReview& r) { return !r.is_design; }},
      {"design+accepted",
       [](const ArticleReview& r) { return r.is_design && r.accepted; }},
      {"design+rejected",
       [](const ArticleReview& r) { return r.is_design && !r.accepted; }},
      {"non-design+accepted",
       [](const ArticleReview& r) { return !r.is_design && r.accepted; }},
      {"non-design+rejected",
       [](const ArticleReview& r) { return !r.is_design && !r.accepted; }},
  };
  for (const auto& cat : categories) {
    std::vector<double> sample;
    for (const auto& r : reviews) {
      if (cat.member(r)) sample.push_back(r.aspect(aspect));
    }
    group.labels.push_back(cat.label);
    group.violins.push_back(atlarge::stats::violin(sample));
  }
  return group;
}

}  // namespace atlarge::design
