#include "atlarge/design/catalog.hpp"

#include <algorithm>
#include <cmath>

namespace atlarge::design {

std::string to_string(PrincipleCategory c) {
  switch (c) {
    case PrincipleCategory::kHighest: return "highest";
    case PrincipleCategory::kSystems: return "systems";
    case PrincipleCategory::kPeopleware: return "peopleware";
    case PrincipleCategory::kMethodology: return "methodology";
  }
  return "?";
}

const std::vector<Principle>& principles() {
  static const std::vector<Principle> kPrinciples = {
      {1, PrincipleCategory::kHighest, "design of design",
       "Design needs design: MCS design must be designed, not left to "
       "intuition and selective experience."},
      {2, PrincipleCategory::kSystems, "age of distributed ecosystems",
       "This is the Age of Distributed Ecosystems: the designer is "
       "constantly aware systems live inside ecosystems."},
      {3, PrincipleCategory::kSystems, "NFRs, phenomena",
       "Dynamic non-functional properties and phenomena are first-class "
       "concerns."},
      {4, PrincipleCategory::kSystems, "RM&S, self-awareness",
       "Resource Management and Scheduling, and its interplay with "
       "information sources for local and global self-awareness, are key "
       "concerns."},
      {5, PrincipleCategory::kPeopleware, "education in design",
       "Education practices for MCS must ensure the competence and "
       "integrity needed for experimenting, creating, and operating "
       "ecosystems."},
      {6, PrincipleCategory::kPeopleware, "pragmatic, innovative, ethical",
       "Design communities can foster and curate pragmatic, innovative, "
       "and ethical design practices."},
      {7, PrincipleCategory::kMethodology, "design science, practice, culture",
       "We understand and create together a science, practice, and culture "
       "of MCS design."},
      {8, PrincipleCategory::kMethodology, "evolution and emergence",
       "We are aware of the history and evolution of MCS designs, key "
       "debates, and evolving patterns."},
  };
  return kPrinciples;
}

const std::vector<Challenge>& challenges() {
  static const std::vector<Challenge> kChallenges = {
      {1, PrincipleCategory::kHighest, "Design of design",
       "Creating processes that enable and facilitate pragmatic and "
       "innovative MCS designs.",
       {1}},
      {2, PrincipleCategory::kHighest, "What is good design?",
       "Understand (automatically) what is good design, and how to assess "
       "it.",
       {1}},
      {3, PrincipleCategory::kHighest, "Design space exploration",
       "Simulation-based approaches and experimentation for design space "
       "exploration; calibration and reproducibility are key.",
       {1}},
      {4, PrincipleCategory::kSystems, "Design for ecosystems",
       "Design for MCS, not for individual systems.",
       {2}},
      {5, PrincipleCategory::kSystems, "Catalog for MCS design",
       "Establish a catalog of components for MCS design.",
       {3, 4}},
      {6, PrincipleCategory::kPeopleware, "Education, curriculum",
       "Create a teachable common body of knowledge for MCS designs; "
       "design effective teaching practices.",
       {5}},
      {7, PrincipleCategory::kPeopleware, "Community engagement",
       "Create communities and environments for people to engage with the "
       "design and operation of ecosystems.",
       {6}},
      {8, PrincipleCategory::kMethodology, "Documenting designs",
       "Design a formalism for documenting designs and tracing their "
       "evolution.",
       {5, 6, 7}},
      {9, PrincipleCategory::kMethodology, "Design in practice",
       "Understand MCS design in practice: how and when do practitioners "
       "design what they design?",
       {7}},
      {10, PrincipleCategory::kMethodology, "Organizational similarity",
       "Look for evidence of organizational similarity across designs "
       "originating in similar organizations.",
       {7}},
  };
  return kChallenges;
}

std::vector<Challenge> challenges_for_principle(std::uint32_t principle) {
  std::vector<Challenge> out;
  for (const auto& c : challenges()) {
    if (std::find(c.principles.begin(), c.principles.end(), principle) !=
        c.principles.end())
      out.push_back(c);
  }
  return out;
}

std::string to_string(ProblemArchetype a) {
  switch (a) {
    case ProblemArchetype::kEcosystemLifecycle: return "P1-lifecycle";
    case ProblemArchetype::kEmergingNeeds: return "P2-emerging-needs";
    case ProblemArchetype::kLegacy: return "P3-legacy";
    case ProblemArchetype::kMorphology: return "P4-morphology";
    case ProblemArchetype::kUnexploredNiche: return "P5-niche";
  }
  return "?";
}

std::string to_string(ProblemSource s) {
  switch (s) {
    case ProblemSource::kPeerReviewedStudies: return "S1-studies";
    case ProblemSource::kExpertPractice: return "S2-expert-practice";
    case ProblemSource::kOwnExperiments: return "S3-own-experiments";
  }
  return "?";
}

void ProblemCatalog::add(ProblemStatement problem) {
  problems_.push_back(std::move(problem));
}

std::vector<ProblemStatement> ProblemCatalog::by_archetype(
    ProblemArchetype a) const {
  std::vector<ProblemStatement> out;
  for (const auto& p : problems_)
    if (p.archetype == a) out.push_back(p);
  return out;
}

ProblemCatalog paper_problem_catalog() {
  ProblemCatalog catalog;
  catalog.add({"Understand the global BitTorrent ecosystem",
               ProblemArchetype::kMorphology,
               ProblemSource::kOwnExperiments,
               "Longitudinal measurement of swarms, trackers, and peers "
               "(BTWorld, MultiProbe)."});
  catalog.add({"Collaborative downloads under bandwidth asymmetry",
               ProblemArchetype::kEmergingNeeds,
               ProblemSource::kPeerReviewedStudies,
               "ADSL asymmetry leaves download capacity idle; 2fast pools "
               "group upload."});
  catalog.add({"Scale MMOGs beyond single-server virtual worlds",
               ProblemArchetype::kEcosystemLifecycle,
               ProblemSource::kExpertPractice,
               "Dynamic provisioning and Area-of-Simulation for V-World "
               "operation."});
  catalog.add({"Reference architecture for datacenter ecosystems",
               ProblemArchetype::kMorphology,
               ProblemSource::kPeerReviewedStudies,
               "Map the emerging big-data and cloud stacks onto common "
               "layers (Figure 9)."});
  catalog.add({"Understand serverless computing",
               ProblemArchetype::kEcosystemLifecycle,
               ProblemSource::kExpertPractice,
               "Terminology, performance challenges, and a FaaS reference "
               "architecture (SPEC RG)."});
  catalog.add({"Benchmark graph processing across PAD",
               ProblemArchetype::kMorphology,
               ProblemSource::kOwnExperiments,
               "Graphalytics: multi-platform, multi-algorithm, "
               "multi-dataset benchmarking."});
  catalog.add({"Keep legacy MapReduce stacks efficient in new ecosystems",
               ProblemArchetype::kLegacy,
               ProblemSource::kExpertPractice,
               "Elastic MapReduce (Fawkes) and portfolio scheduling for "
               "mixed workloads."});
  catalog.add({"Characterize unexplored corners of scheduler design space",
               ProblemArchetype::kUnexploredNiche, std::nullopt,
               "Portfolio scheduling: online policy selection as a new "
               "design axis."});
  return catalog;
}

std::string to_string(CreativityLevel level) {
  switch (level) {
    case CreativityLevel::kTrivial: return "trivial";
    case CreativityLevel::kNormal: return "normal";
    case CreativityLevel::kNovel: return "novel";
    case CreativityLevel::kFundamental: return "fundamental";
    case CreativityLevel::kOutstanding: return "outstanding";
  }
  return "?";
}

std::string to_string(PerformanceBaseline b) {
  switch (b) {
    case PerformanceBaseline::kRandom: return "vs-random";
    case PerformanceBaseline::kNaive: return "vs-naive";
    case PerformanceBaseline::kCurrentPractice: return "vs-current-practice";
    case PerformanceBaseline::kIdeal: return "vs-ideal";
  }
  return "?";
}

CreativityLevel assess_creativity(double quality, double innovation) {
  // The discrete quantization reviewers apply: average the two 1-4 scores
  // and round — which is precisely why scores cluster around the middle
  // (challenge C2).
  const double score = std::clamp((quality + innovation) / 2.0, 1.0, 4.0);
  const int level = static_cast<int>(std::lround(score));
  switch (level) {
    case 1: return CreativityLevel::kTrivial;
    case 2: return CreativityLevel::kNormal;
    case 3: return CreativityLevel::kNovel;
    default: return CreativityLevel::kFundamental;
  }
}

}  // namespace atlarge::design
