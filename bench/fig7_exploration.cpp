// Figures 6-7: the basic design processes (free / fix-the-what /
// fix-the-how / co-evolving) compared on rugged design spaces, and a
// co-evolving traversal trace in the style of Figure 7 (solutions found,
// failures, problem evolutions).
//
// The experiment sweeps the evaluation budget. The paper's qualitative
// claims all show up as budget effects: free exploration's success is
// limited by the scale of the space (tiny budgets fail); the fixed
// processes trade the quality ceiling (radical innovation) for a more
// concentrated search; co-evolving converts failures into problem
// evolutions while keeping a satisficing design per epoch.

#include <cstdio>

#include "atlarge/design/design_space.hpp"
#include "atlarge/design/exploration.hpp"
#include "atlarge/stats/rng.hpp"
#include "bench_util.hpp"

using namespace atlarge;

namespace {

struct Cell {
  std::size_t successes = 0;
  double total_best = 0.0;
  std::size_t failures = 0;
  std::size_t evolutions = 0;
};

constexpr std::size_t kTrials = 10;

/// Runs all four processes on one problem instance under one budget.
void run_once(std::uint64_t seed, std::size_t budget, Cell cells[4]) {
  design::DesignProblem problem(18, 6, 4, 0.74, seed);
  design::ExplorationConfig config;
  config.evaluation_budget = budget;
  config.restart_period = 100;
  config.stall_limit = 60;
  config.seed = seed * 31;

  // Fixing the What means committing to known technology: the pinned
  // values come from the best design of a 300-sample expert survey.
  stats::Rng survey_rng(seed * 97);
  design::DesignPoint expert = problem.random_point(survey_rng);
  double expert_quality = problem.quality(expert);
  for (int s = 0; s < 299; ++s) {
    const auto candidate = problem.random_point(survey_rng);
    const double q = problem.quality(candidate);
    if (q > expert_quality) {
      expert_quality = q;
      expert = candidate;
    }
  }
  const std::vector<std::size_t> pinned = {0, 1, 2, 3, 4, 5};
  design::DesignPoint pinned_values;
  for (std::size_t d : pinned) pinned_values.push_back(expert[d]);
  // Fixing the How keeps only half of each dimension's options (the
  // re-framing of relationships).
  std::vector<std::uint32_t> allowed(problem.dimensions(), 3);

  design::ExplorationTrace traces[4];
  traces[0] = design::explore_free(problem, config);
  traces[1] = design::explore_fix_what(problem, pinned, pinned_values,
                                       config);
  traces[2] = design::explore_fix_how(problem, allowed, config);
  traces[3] = design::explore_co_evolving(problem, config);
  for (int i = 0; i < 4; ++i) {
    cells[i].successes += traces[i].success();
    cells[i].total_best += traces[i].best_quality;
    cells[i].failures += traces[i].failures;
    cells[i].evolutions += traces[i].problem_evolutions;
  }
}

}  // namespace

int main() {
  bench::header("Figures 6-7: design-space exploration processes");
  std::printf("problem: 18 dims x 6 options (~10^14 designs), K=4 "
              "interactions, satisfice at 0.74; %zu trials per cell\n",
              kTrials);

  std::printf("\n%-8s | %-20s | %-20s | %-20s | %-20s\n", "budget", "free",
              "fix-the-what", "fix-the-how", "co-evolving");
  std::printf("%-8s | %8s %9s | %8s %9s | %8s %9s | %8s %9s\n", "",
              "success", "best-q", "success", "best-q", "success", "best-q",
              "success", "best-q");
  std::size_t evolutions_total = 0;
  for (std::size_t budget : {40ul, 80ul, 150ul, 400ul, 1'500ul}) {
    Cell cells[4];
    for (std::uint64_t seed = 1; seed <= kTrials; ++seed)
      run_once(seed, budget, cells);
    std::printf("%-8zu |", budget);
    for (int i = 0; i < 4; ++i) {
      std::printf(" %5zu/%-2zu %9.3f |", cells[i].successes, kTrials,
                  cells[i].total_best / kTrials);
    }
    std::printf("\n");
    evolutions_total += cells[3].evolutions;
  }

  std::printf(
      "\nPaper claims reproduced:\n"
      " * success likelihood is limited by the scale of the design space:\n"
      "   every process fails under tiny budgets and saturates with more;\n"
      " * the Fix-the-What/How processes concentrate the search but cap\n"
      "   the attainable quality (their best-qual ceiling sits below\n"
      "   free exploration's) - the paper's innovation trade-off;\n"
      " * co-evolving matches free exploration's success while converting\n"
      "   stalls into problem evolutions (%zu across the sweep).\n",
      evolutions_total);

  // A single co-evolving traversal, narrated as in Figure 7.
  bench::header("Figure 7: one co-evolving traversal");
  design::DesignProblem problem(14, 4, 6, 0.85, 99);
  design::ExplorationConfig config;
  config.evaluation_budget = 5'000;
  config.stall_limit = 400;
  const auto trace = design::explore_co_evolving(problem, config);
  std::printf("improvements over the run (evaluation, quality, satisfices):\n");
  for (const auto& a : trace.attempts) {
    std::printf("  eval %5zu  quality %.3f  %s\n", a.evaluation, a.quality,
                a.satisficing ? "SATISFICES" : "");
  }
  std::printf("problem evolutions: %zu, satisficing designs found: %zu, "
              "failed climbs: %zu\n",
              trace.problem_evolutions, trace.satisficing_designs,
              trace.failures);
  return 0;
}
