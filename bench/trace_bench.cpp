// Google-benchmark microbenchmarks of the workload plane (trace::*): the
// .atl columnar writer and chunked reader, the seeded workload generators,
// and the zipfian key sampler. The write/read pair is the hot path of
// trace-driven campaigns — a multi-GB trace replays at reader speed, so
// its throughput trajectory is tracked the same way the kernel's is.
//
// Run with `--json[=path]` to additionally emit the results as JSON
// (default path BENCH_trace.json); the repo tracks that file so the perf
// gate (bench/compare_bench.py) sees regressions. Regenerate with:
//   ./build/bench/trace_bench --json=BENCH_trace.json

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json_main.hpp"

#include "atlarge/stats/rng.hpp"
#include "atlarge/trace/atl.hpp"
#include "atlarge/trace/catalog.hpp"
#include "atlarge/trace/event.hpp"
#include "atlarge/trace/gen.hpp"

using namespace atlarge;

namespace {

std::string bench_path(const char* tag) {
  return std::string("trace_bench_") + tag + ".atl";
}

/// A deterministic event batch shared by the writer/reader benchmarks —
/// generator cost must not pollute the I/O numbers.
const std::vector<trace::Event>& sample_events(std::size_t n) {
  static std::vector<trace::Event> cache;
  if (cache.size() < n) {
    trace::gen::FlashcrowdSpec spec;
    spec.duration = 3'600.0;
    spec.base_rate = 50.0;
    spec.surge_time = 1'800.0;
    spec.surge_rate = 450.0;
    cache = trace::catalog::events(
        trace::catalog::Scenario{
            "bench", "bench", "serverless",
            trace::catalog::Scenario::Shape::kFlashcrowd, spec, {}, 7},
        7, n);
  }
  return cache;
}

// -------------------------------------------------------------- .atl I/O --

void BM_AtlWrite(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& events = sample_events(n);
  const std::string path = bench_path("write");
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    trace::TraceWriter writer(path, trace::event_schema());
    for (std::size_t i = 0; i < n; ++i) writer.append(events[i]);
    writer.finish();
    bytes = writer.bytes_written();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
  std::remove(path.c_str());
}

void BM_AtlRead(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& events = sample_events(n);
  const std::string path = bench_path("read");
  std::uint64_t bytes = 0;
  {
    trace::TraceWriter writer(path, trace::event_schema());
    for (std::size_t i = 0; i < n; ++i) writer.append(events[i]);
    writer.finish();
    bytes = writer.bytes_written();
  }
  for (auto _ : state) {
    trace::TraceReader reader(path);
    std::int64_t sum = 0;
    while (reader.next_chunk()) {
      const auto& t = reader.int_column(0);
      for (const std::int64_t v : t) sum += v;
    }
    benchmark::DoNotOptimize(sum);
    if (reader.rows_read() != n) state.SkipWithError("row count mismatch");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
  std::remove(path.c_str());
}

void BM_AtlEventStream(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& events = sample_events(n);
  const std::string path = bench_path("stream");
  {
    trace::TraceWriter writer(path, trace::event_schema());
    for (std::size_t i = 0; i < n; ++i) writer.append(events[i]);
    writer.finish();
  }
  for (auto _ : state) {
    trace::TraceReader reader(path);
    trace::AtlEventStream stream(reader);
    trace::Event e;
    std::size_t rows = 0;
    while (stream.next(e)) ++rows;
    if (rows != n) state.SkipWithError("event count mismatch");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ generators --

void BM_FlashcrowdGenerate(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  const auto* scenario = trace::catalog::find("feed-fanout");
  for (auto _ : state) {
    const auto events = trace::catalog::events(*scenario, 7, cap);
    benchmark::DoNotOptimize(events.data());
    if (events.size() != cap) state.SkipWithError("generator under-ran cap");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cap) *
                          state.iterations());
}

void BM_ZipfSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  trace::gen::ZipfSampler zipf(n, 0.99);
  stats::Rng rng(11);
  std::int64_t sum = 0;
  for (auto _ : state) sum += zipf(rng);
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_AtlWrite)->Arg(1 << 16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AtlRead)->Arg(1 << 16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AtlEventStream)->Arg(1 << 16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlashcrowdGenerate)->Arg(1 << 14)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ZipfSample)->Arg(1 << 20);

ATLARGE_BENCH_JSON_MAIN("BENCH_trace.json")
