#!/usr/bin/env python3
"""Perf-regression gate: compare a google-benchmark --json run to a
committed baseline (the tracked BENCH_*.json snapshots).

Usage:
    compare_bench.py BASELINE.json CURRENT.json [options]
    compare_bench.py --self-test

Benchmarks are matched by name. The compared metric is items_per_second
when both sides report it (higher is better), falling back to real_time
(lower is better). A benchmark regresses when it is worse than the
baseline by more than --threshold (default 0.25, i.e. 25%). Benchmarks
present on only one side are reported but never fail the gate (they are
new or retired, not regressed).

Guard rails:
  * refuses to compare when the current run was built as Debug (the
    atlarge_build_type context stamped by bench_json_main.hpp) — a
    Debug-vs-Release comparison only produces noise;
  * warns when either side was recorded under high load (load_avg above
    ~1.5x the core count) — numbers from a busy machine are suspect.

Always prints a markdown summary table; --markdown PATH writes the same
table to a file (append mode, so several gates can share one
GITHUB_STEP_SUMMARY).

Exit codes: 0 = pass, 1 = regression(s), 2 = refused / bad input.
"""

import argparse
import json
import sys


def load_entries(doc):
    """name -> (value, kind) for every non-aggregate benchmark entry."""
    entries = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "items_per_second" in bench:
            entries[name] = (float(bench["items_per_second"]), "items/s")
        else:
            entries[name] = (float(bench["real_time"]), "time")
    return entries


def check_context(doc, label, warnings, errors):
    ctx = doc.get("context", {})
    build_type = str(
        ctx.get("atlarge_build_type", ctx.get("library_build_type", ""))
    ).lower()
    if "debug" in build_type:
        errors.append(
            f"{label}: built as '{build_type}' — rebuild with "
            "-DCMAKE_BUILD_TYPE=Release before gating on performance"
        )
    load = ctx.get("load_avg")
    cpus = ctx.get("num_cpus", 1) or 1
    if load and load[0] > 1.5 * cpus:
        warnings.append(
            f"{label}: recorded under load_avg {load[0]:.2f} on {cpus} "
            "CPU(s) — treat these numbers with suspicion"
        )


def compare(baseline, current, threshold):
    """Returns (rows, regressions). Each row is a dict for the table."""
    rows = []
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            rows.append({"name": name, "status": "retired"})
            continue
        if name not in baseline:
            rows.append({"name": name, "status": "new"})
            continue
        base_val, base_kind = baseline[name]
        cur_val, cur_kind = current[name]
        if base_kind != cur_kind or base_val == 0:
            rows.append({"name": name, "status": "incomparable"})
            continue
        if base_kind == "items/s":
            ratio = cur_val / base_val  # higher is better
            regressed = ratio < 1.0 - threshold
        else:
            ratio = base_val / cur_val  # lower time is better; >1 = faster
            regressed = cur_val > base_val * (1.0 + threshold)
        status = "REGRESSED" if regressed else "ok"
        row = {
            "name": name,
            "baseline": base_val,
            "current": cur_val,
            "kind": base_kind,
            "ratio": ratio,
            "status": status,
        }
        rows.append(row)
        if regressed:
            regressions.append(row)
    return rows, regressions


def fmt_value(value, kind):
    if kind == "items/s":
        return f"{value:,.0f}/s"
    return f"{value:,.0f} ns"


def markdown_table(rows, threshold):
    lines = [
        f"| benchmark | baseline | current | ratio | status |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        if "ratio" not in row:
            lines.append(f"| {row['name']} | — | — | — | {row['status']} |")
            continue
        mark = "❌" if row["status"] == "REGRESSED" else "✅"
        lines.append(
            f"| {row['name']} | {fmt_value(row['baseline'], row['kind'])} "
            f"| {fmt_value(row['current'], row['kind'])} "
            f"| {row['ratio']:.2f}x | {mark} {row['status']} |"
        )
    lines.append("")
    lines.append(
        f"_Gate: fail when a benchmark is >{threshold:.0%} worse than "
        "baseline (matched by name; items_per_second preferred, real_time "
        "fallback)._"
    )
    return "\n".join(lines)


def run_gate(args):
    warnings, errors = [], []
    try:
        with open(args.baseline) as fh:
            base_doc = json.load(fh)
        with open(args.current) as fh:
            cur_doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare_bench: cannot read inputs: {exc}", file=sys.stderr)
        return 2

    check_context(base_doc, f"baseline ({args.baseline})", warnings, errors)
    check_context(cur_doc, f"current ({args.current})", warnings, errors)
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    if errors and not args.force:
        for error in errors:
            print(f"REFUSED: {error}", file=sys.stderr)
        return 2

    rows, regressions = compare(
        load_entries(base_doc), load_entries(cur_doc), args.threshold
    )
    table = markdown_table(rows, args.threshold)
    print(table)
    if args.markdown:
        with open(args.markdown, "a") as fh:
            fh.write(table + "\n")

    if regressions:
        print(
            f"\ncompare_bench: {len(regressions)} benchmark(s) regressed "
            f"beyond {args.threshold:.0%}:",
            file=sys.stderr,
        )
        for row in regressions:
            print(f"  {row['name']}: {row['ratio']:.2f}x", file=sys.stderr)
        return 1
    return 0


# ------------------------------------------------------------- self test --


def make_doc(values, build_type="Release", load=0.2, items=True):
    benchmarks = []
    for name, value in values.items():
        entry = {"name": name, "real_time": 100.0, "run_type": "iteration"}
        if items:
            entry["items_per_second"] = value
        else:
            entry["real_time"] = value
        benchmarks.append(entry)
    return {
        "context": {
            "atlarge_build_type": build_type,
            "load_avg": [load, load, load],
            "num_cpus": 1,
        },
        "benchmarks": benchmarks,
    }


def self_test():
    failures = []

    def check(label, got, want):
        if got != want:
            failures.append(f"{label}: got {got!r}, want {want!r}")

    # Within threshold: a 20% drop passes a 25% gate.
    rows, regs = compare(
        load_entries(make_doc({"BM_A/1": 100.0})),
        load_entries(make_doc({"BM_A/1": 80.0})),
        0.25,
    )
    check("20% drop passes", len(regs), 0)
    check("20% drop status", rows[0]["status"], "ok")

    # Beyond threshold: a 30% drop fails.
    _, regs = compare(
        load_entries(make_doc({"BM_A/1": 100.0})),
        load_entries(make_doc({"BM_A/1": 70.0})),
        0.25,
    )
    check("30% drop fails", len(regs), 1)

    # Improvements pass with ratio > 1.
    rows, regs = compare(
        load_entries(make_doc({"BM_A/1": 100.0})),
        load_entries(make_doc({"BM_A/1": 200.0})),
        0.25,
    )
    check("improvement passes", len(regs), 0)
    check("improvement ratio", round(rows[0]["ratio"], 2), 2.0)

    # real_time fallback: lower is better, 30% slower fails.
    _, regs = compare(
        load_entries(make_doc({"BM_T": 100.0}, items=False)),
        load_entries(make_doc({"BM_T": 130.1}, items=False)),
        0.25,
    )
    check("time regression fails", len(regs), 1)

    # New / retired benchmarks never fail the gate.
    rows, regs = compare(
        load_entries(make_doc({"BM_Old": 1.0})),
        load_entries(make_doc({"BM_New": 1.0})),
        0.25,
    )
    check("new/retired pass", len(regs), 0)
    check(
        "new/retired statuses",
        sorted(r["status"] for r in rows),
        ["new", "retired"],
    )

    # Debug builds are refused; high load only warns.
    warnings, errors = [], []
    check_context(make_doc({}, build_type="Debug"), "x", warnings, errors)
    check("debug refused", len(errors), 1)
    warnings, errors = [], []
    check_context(make_doc({}, load=9.0), "x", warnings, errors)
    check("high load warns", (len(warnings), len(errors)), (1, 0))

    # Aggregate entries (mean/median/stddev) are ignored.
    doc = make_doc({"BM_A/1": 100.0})
    doc["benchmarks"].append(
        {
            "name": "BM_A/1_mean",
            "run_type": "aggregate",
            "items_per_second": 1.0,
            "real_time": 1.0,
        }
    )
    check("aggregates ignored", len(load_entries(doc)), 1)

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
        return 1
    print("compare_bench.py self-test: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Compare two google-benchmark JSON files."
    )
    parser.add_argument("baseline", nargs="?", help="committed BENCH_*.json")
    parser.add_argument("current", nargs="?", help="freshly generated run")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional regression that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--markdown", help="append the summary table to this file"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="compare even when the build-type check would refuse",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in unit checks and exit",
    )
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        parser.error("baseline and current JSON files are required")
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
