#pragma once
// Shared `--workload` replay driver for the table/section harnesses.
//
// Every simulation harness (table5/table7/table9/sec67) doubles as a
// trace-replay driver: pass `--workload=<scenario>` to run a named
// trace::catalog scenario through its engine, or `--workload=<file.atl>`
// to stream a binary trace from disk. The driver prints the deterministic
// ReplaySummary (one key=value per line) and exits, skipping the paper
// tables entirely.
//
// Flags:
//   --workload=<scenario|file.atl>   required to enter replay mode
//   --max-events=N                   cap events pulled from the stream
//   --seed=N                         generator seed (default: scenario's)
//   --workload-out=<file.atl>        write the generated trace, then
//                                    replay it back FROM THE FILE (the
//                                    write->read round trip CI smokes)
//   --metrics-out=<file.json>        obs::Registry JSON (replay counters
//                                    plus trace-reader residency gauges)
//
// A .atl file carries events but not an engine binding, so file replays
// use the harness's default scenario for engine and config; named
// scenarios may belong to any engine (the catalog knows which).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "atlarge/obs/metrics.hpp"
#include "atlarge/trace/catalog.hpp"
#include "bench_util.hpp"

namespace atlarge::bench {

/// Runs replay mode if `--workload` was passed. Returns true when it ran
/// (the caller should exit 0) and false when the harness should print its
/// normal tables.
inline bool workload_mode(int argc, char** argv,
                          const char* default_scenario) {
  const std::string workload = flag_value(argc, argv, "--workload");
  if (workload.empty()) return false;

  const bool is_file = workload.size() > 4 &&
                       workload.compare(workload.size() - 4, 4, ".atl") == 0;
  const trace::catalog::Scenario* scenario =
      trace::catalog::find(is_file ? default_scenario : workload.c_str());
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; catalog:\n",
                 workload.c_str());
    for (const auto& s : trace::catalog::scenarios())
      std::fprintf(stderr, "  %-18s %-10s %s\n", s.name.c_str(),
                   s.engine.c_str(), s.family.c_str());
    std::exit(2);
  }

  obs::Registry registry;
  trace::catalog::ReplayOptions options;
  options.max_events = static_cast<std::size_t>(
      u64_flag(argc, argv, "--max-events", 0));
  options.obs = &registry;
  const std::uint64_t seed =
      u64_flag(argc, argv, "--seed", scenario->default_seed);

  trace::catalog::ReplaySummary summary;
  const std::string out = flag_value(argc, argv, "--workload-out");
  if (is_file) {
    summary = trace::catalog::replay_file(*scenario, workload, options);
  } else if (!out.empty()) {
    const auto written = trace::catalog::write_trace(*scenario, out, seed,
                                                     options.max_events);
    std::fprintf(stderr, "wrote %llu events to %s\n",
                 static_cast<unsigned long long>(written), out.c_str());
    summary = trace::catalog::replay_file(*scenario, out, options);
  } else {
    summary = trace::catalog::replay_generated(*scenario, seed, options);
  }

  std::fputs(summary.text().c_str(), stdout);

  const std::string metrics = flag_value(argc, argv, "--metrics-out");
  if (!metrics.empty()) write_text_file(metrics, registry.json());
  return true;
}

}  // namespace atlarge::bench
