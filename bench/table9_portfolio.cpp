// Table 9 / Section 6.6: portfolio scheduling across workloads and
// environments. Each row re-runs the corresponding study's question:
// is the portfolio "useful" — within a small margin of the best single
// policy, while no single policy is consistently best? Also reproduces
// the online-cost arc: [114] simulate-all is too slow online, [115] the
// active set fixes it, [120] noisy utilities cause mis-selection.

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

#include "atlarge/cluster/machine.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/portfolio.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/workflow/generators.hpp"
#include "bench_util.hpp"
#include "workload_mode.hpp"

using namespace atlarge;

namespace {

struct StudyRow {
  const char* study;
  workflow::WorkloadClass cls;
  cluster::Environment env;
};

workflow::Workload make_workload(workflow::WorkloadClass cls,
                                 std::uint64_t seed) {
  workflow::WorkloadSpec spec;
  spec.cls = cls;
  spec.jobs = 60;
  spec.horizon = 4'000.0;
  spec.seed = seed;
  return workflow::generate(spec);
}

void table9() {
  bench::header("Table 9: portfolio scheduling across W x Env");
  std::vector<StudyRow> rows;
  rows.push_back({"[114]('13) Syn/CL", workflow::WorkloadClass::kSynthetic,
                  cluster::make_homogeneous_cluster("CL", 4, 8)});
  rows.push_back({"[115]('13) Sci/G+CD", workflow::WorkloadClass::kScientific,
                  cluster::make_grid("G", 3, 2, 8)});
  rows.push_back({"[116]('13) Sci+Gam/CL", workflow::WorkloadClass::kGaming,
                  cluster::make_homogeneous_cluster("CL", 4, 8)});
  rows.push_back({"[117]('13) CE/GDC", workflow::WorkloadClass::kComputerEng,
                  cluster::make_geo_distributed("GDC", 3, 2, 8, 0.05)});
  rows.push_back({"[118]('15) BC/MCD",
                  workflow::WorkloadClass::kBusinessCritical,
                  cluster::make_multi_cluster("MCD", 3, 2, 8)});
  rows.push_back({"[119]('17) Ind/CD", workflow::WorkloadClass::kIndustrial,
                  cluster::make_cloud("CD", 8, 8, 60.0)});
  rows.push_back({"[120]('18) BD/Cl", workflow::WorkloadClass::kBigData,
                  cluster::make_homogeneous_cluster("Cl", 4, 8)});

  std::printf("\n%-24s %12s %12s %12s %10s\n", "study (W/Env)",
              "best single", "worst single", "portfolio", "useful?");
  std::map<std::string, int> single_wins;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto wl = make_workload(rows[i].cls, 100 + i);
    double best = std::numeric_limits<double>::infinity();
    double worst = 0.0;
    std::string best_name;
    for (auto& p : sched::standard_policies()) {
      const auto r = sched::simulate(rows[i].env, wl, *p);
      if (r.mean_slowdown < best) {
        best = r.mean_slowdown;
        best_name = p->name();
      }
      worst = std::max(worst, r.mean_slowdown);
    }
    ++single_wins[best_name];
    sched::PortfolioScheduler portfolio(sched::standard_policies(),
                                        rows[i].env, {});
    const auto r = sched::simulate(rows[i].env, wl, portfolio);
    const bool useful = r.mean_slowdown <= best * 1.2 + 0.2;
    std::printf("%-24s %12.2f %12.2f %12.2f %10s\n", rows[i].study, best,
                worst, r.mean_slowdown, useful ? "useful" : "NO");
  }
  std::printf("\nbest single policy differs per row:");
  for (const auto& [name, wins] : single_wins)
    std::printf(" %s=%d", name.c_str(), wins);
  std::printf("\n=> no single policy is consistently best (the finding that "
              "motivated portfolio scheduling); the portfolio tracks the "
              "per-row best.\n");
}

void online_cost_arc() {
  bench::header("[114]->[115] Online simulation cost and the active set");
  const auto env = cluster::make_homogeneous_cluster("CL", 4, 8);
  const auto wl = make_workload(workflow::WorkloadClass::kScientific, 42);

  std::printf("%-30s %12s %14s %12s\n", "configuration", "makespan",
              "overhead (s)", "slowdown");
  struct Case {
    const char* label;
    sched::PortfolioConfig config;
  };
  sched::PortfolioConfig free_sim;
  sched::PortfolioConfig costly;
  costly.cost_per_task_policy = 0.2;
  sched::PortfolioConfig active2 = costly;
  active2.active_set = 2;
  sched::PortfolioConfig active4 = costly;
  active4.active_set = 4;
  for (const auto& c :
       {Case{"instant simulation", free_sim},
        Case{"charged, full portfolio (7)", costly},
        Case{"charged, active set K=4", active4},
        Case{"charged, active set K=2", active2}}) {
    sched::PortfolioScheduler portfolio(sched::standard_policies(), env,
                                        c.config);
    const auto r = sched::simulate(env, wl, portfolio);
    std::printf("%-30s %12.0f %14.0f %12.2f\n", c.label, r.makespan,
                portfolio.total_overhead(), r.mean_slowdown);
  }
  std::printf("=> charging for what-if simulation slows the scheduler; the "
              "active set recovers most of the loss.\n");
}

void misselection() {
  bench::header("[120] Mis-selection under unpredictable performance");
  const auto env = cluster::make_homogeneous_cluster("Cl", 4, 8);
  const auto wl = make_workload(workflow::WorkloadClass::kBigData, 7);
  std::printf("%-18s %12s\n", "utility noise", "slowdown");
  for (double noise : {0.0, 1.0, 3.0}) {
    sched::PortfolioConfig config;
    config.utility_noise = noise;
    config.seed = 77;
    sched::PortfolioScheduler portfolio(sched::standard_policies(), env,
                                        config);
    const auto r = sched::simulate(env, wl, portfolio);
    std::printf("%-18.1f %12.2f\n", noise, r.mean_slowdown);
  }
  std::printf("=> when policy performance is hard to predict, selection "
              "quality degrades (open problem in the paper).\n");
}

/// Re-runs one representative portfolio experiment with the observability
/// plane attached and exports whatever was asked for: the span timeline as
/// a Chrome trace (--trace, load in Perfetto / about://tracing), the final
/// registry state as JSON (--metrics-out), and the continuous sim-time
/// series sampled every 10 s (--timeseries-out, JSON or CSV by extension).
void instrumented_run(const std::string& trace_path,
                      const std::string& metrics_path,
                      const std::string& series_path) {
  bench::header("Instrumented run (--trace/--metrics-out/--timeseries-out)");
  const auto env = cluster::make_homogeneous_cluster("CL", 4, 8);
  const auto wl = make_workload(workflow::WorkloadClass::kScientific, 42);

  obs::Observability plane;
  obs::TimeSeries series(10.0);
  series.track_counter("events_fired", plane.metrics.counter("sim.events_fired"));
  series.track_counter("tasks_placed", plane.metrics.counter("sched.tasks_placed"));
  series.track_gauge("eligible_queue", plane.metrics.gauge("sched.eligible_queue"));
  series.track_gauge("queue_depth", plane.metrics.gauge("sim.queue_depth"));
  plane.attach_timeseries(&series);

  sched::PortfolioConfig config;
  config.obs = &plane;
  sched::PortfolioScheduler portfolio(sched::standard_policies(), env,
                                      config);
  sched::SimOptions options;
  options.obs = &plane;
  const auto r = sched::simulate(env, wl, portfolio, options);
  std::printf("slowdown %.2f over %zu jobs\n", r.mean_slowdown,
              r.jobs.size());

  if (!trace_path.empty()) {
    if (!plane.tracer.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      std::exit(1);
    }
    bench::note("trace: " + std::to_string(plane.tracer.size()) +
                " records -> " + trace_path);
  }
  if (!metrics_path.empty()) {
    bench::write_text_file(metrics_path, plane.metrics.json());
    bench::note("metrics -> " + metrics_path);
  }
  if (!series_path.empty()) {
    if (series_path.size() > 4 &&
        series_path.compare(series_path.size() - 4, 4, ".csv") == 0) {
      series.write_csv(series_path);
    } else {
      series.write_json(series_path);
    }
    bench::note("timeseries: " + std::to_string(series.size()) + " rows -> " +
                series_path);
  }
  bench::note("metrics: " + plane.metrics.json());
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::workload_mode(argc, argv, "ecommerce-spike")) return 0;
  table9();
  online_cost_arc();
  misselection();
  const std::string trace = bench::trace_flag(argc, argv);
  const std::string metrics = bench::flag_value(argc, argv, "--metrics-out");
  const std::string series = bench::flag_value(argc, argv, "--timeseries-out");
  if (!trace.empty() || !metrics.empty() || !series.empty())
    instrumented_run(trace, metrics, series);
  return 0;
}
