// Section 6.7: the autoscaling experiments.
//  [126]/[128] N=5 experiments x 7 autoscalers, ten elasticity metrics;
//  [127] extended analysis: performance metrics, cost models, deadline
//        SLAs, and the grading method;
// two ranking methods aggregate the results into "which policy is best?".

#include <cstdio>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/autoscale/ranking.hpp"
#include "atlarge/cluster/cost.hpp"
#include "atlarge/fault/fault.hpp"
#include "atlarge/workflow/generators.hpp"
#include "bench_util.hpp"
#include "workload_mode.hpp"

using namespace atlarge;

namespace {

workflow::Workload experiment_workload(std::size_t experiment) {
  workflow::WorkloadSpec spec;
  // Five experiments: vary workload class and intensity, as the study
  // varied workload and environment configurations.
  switch (experiment) {
    case 0: spec.cls = workflow::WorkloadClass::kIndustrial; break;
    case 1: spec.cls = workflow::WorkloadClass::kScientific; break;
    case 2: spec.cls = workflow::WorkloadClass::kBigData; break;
    case 3: spec.cls = workflow::WorkloadClass::kGaming; break;
    default: spec.cls = workflow::WorkloadClass::kSynthetic; break;
  }
  spec.jobs = 40;
  spec.horizon = 4'000.0;
  spec.seed = 1'000 + experiment;
  return workflow::generate(spec);
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::workload_mode(argc, argv, "gaming-diurnal")) return 0;
  bench::header("Section 6.7: autoscaler evaluation (N=5 experiments)");

  const std::size_t kExperiments = 5;
  autoscale::ElasticConfig config;
  config.cores_per_machine = 4;
  config.max_machines = 32;
  config.provisioning_delay = 60.0;
  config.interval = 30.0;
  config.sla_factor = 4.0;

  // Chaos mode (--faults=<rate> [--fault-seed=<n>]): every experiment runs
  // under the same seeded machine-crash plan, so the rankings measure how
  // well each policy re-provisions around capacity loss. Without the flag
  // the plan pointer stays null and output is byte-identical to before.
  fault::FaultPlan plan;
  const double fault_rate = bench::double_flag(argc, argv, "--faults", 0.0);
  if (fault_rate > 0.0) {
    fault::FaultSpec fspec;
    fspec.rate = fault_rate;
    fspec.horizon = 4'000.0;
    fspec.seed = bench::u64_flag(argc, argv, "--fault-seed", 1);
    fspec.targets = static_cast<std::uint32_t>(config.max_machines);
    fspec.mean_duration = 180.0;
    fspec.kinds = {fault::FaultKind::kMachineCrash};
    plan = fault::FaultPlan::generate(fspec);
    config.faults = &plan;
    bench::note("fault plan: " + std::to_string(plan.size()) +
                " machine crashes (rate " + std::to_string(fault_rate) +
                "/1000s, seed " + std::to_string(fspec.seed) + ")");
  }

  // Aggregate per-autoscaler metric vectors across experiments (all
  // lower-is-better).
  std::vector<autoscale::SystemScores> systems;
  const auto zoo_names = [] {
    std::vector<std::string> names;
    for (const auto& a : autoscale::standard_autoscalers())
      names.push_back(a->name());
    return names;
  }();
  systems.reserve(zoo_names.size());
  for (const auto& name : zoo_names)
    systems.push_back(autoscale::SystemScores{name, {}});

  const auto cost_models = cluster::standard_cost_models();

  for (std::size_t e = 0; e < kExperiments; ++e) {
    const auto wl = experiment_workload(e);
    std::printf("\nExperiment %zu (%s, %zu jobs): per-autoscaler results\n",
                e + 1, wl.name.c_str(), wl.jobs.size());
    std::printf("%-9s %9s %8s %8s %7s %7s %7s %9s %8s %9s\n", "scaler",
                "slowdown", "acc_O", "acc_U", "ts_O", "ts_U", "instab",
                "avg_sup", "SLAviol", "cost($)");
    auto zoo = autoscale::standard_autoscalers();
    for (std::size_t i = 0; i < zoo.size(); ++i) {
      const auto result = autoscale::run_elastic(wl, *zoo[i], config);
      const auto& m = result.metrics;
      const double cost =
          cost_models[1].total_cost(result.makespan, result.rentals);
      std::printf("%-9s %9.2f %8.2f %8.2f %7.2f %7.2f %7.2f %9.1f %7.1f%% "
                  "%9.0f\n",
                  zoo[i]->name().c_str(), result.mean_slowdown,
                  m.accuracy_over, m.accuracy_under, m.timeshare_over,
                  m.timeshare_under, m.instability, m.avg_supply,
                  100.0 * result.deadline_violation_rate(), cost);
      // Metric vector for the rankings: elasticity + performance + cost.
      auto& vec = systems[i].metrics;
      vec.push_back(m.accuracy_over);
      vec.push_back(m.accuracy_under);
      vec.push_back(m.norm_accuracy_over);
      vec.push_back(m.norm_accuracy_under);
      vec.push_back(m.timeshare_over);
      vec.push_back(m.timeshare_under);
      vec.push_back(m.instability);
      vec.push_back(m.jitter_per_hour);
      vec.push_back(result.mean_slowdown);
      vec.push_back(result.deadline_violation_rate());
      vec.push_back(cost);
    }
  }

  bench::header("Rankings across all experiments");
  std::printf("\nMethod 1 - pairwise head-to-head (fraction of pairs won):\n");
  for (const auto& r : autoscale::rank_pairwise(systems))
    std::printf("  %-9s %.3f\n", r.name.c_str(), r.score);
  std::printf("\nMethod 2 - mean fractional distance from best (lower "
              "wins):\n");
  for (const auto& r : autoscale::rank_fractional(systems))
    std::printf("  %-9s %.3f\n", r.name.c_str(), r.score);
  std::printf("\nGrading (0-10, combining both methods):\n");
  for (const auto& r : autoscale::grade(systems))
    std::printf("  %-9s %.1f\n", r.name.c_str(), r.score);

  std::printf(
      "\nPaper claims reproduced: no autoscaler dominates every metric;\n"
      "workflow-aware autoscalers (Plan/Token) track demand spikes the\n"
      "general ones must predict; rankings depend on the aggregation\n"
      "method — hence the need for an explicit grading design.\n");
  return 0;
}
