// Google-benchmark microbenchmarks of the campaign engine: trial
// throughput at 1 and N runner threads (the fan-out scaling the engine
// exists for) and the memoized re-run path (the checkpoint/resume cost
// floor — a re-run should be dominated by key hashing and store lookups,
// not simulation).
//
// Run with `--json[=path]` to emit the results as JSON (default path
// BENCH_campaign.json); the repo tracks that file so the campaign
// engine's perf trajectory is visible across PRs. Regenerate with:
//   ./build/bench/campaign_bench --json=BENCH_campaign.json

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json_main.hpp"

#include "atlarge/exp/adapters.hpp"
#include "atlarge/exp/engine.hpp"

using namespace atlarge;

namespace {

/// A small serverless grid (8 points x 2 repeats = 16 trials) at minimal
/// workload scale, so the benchmark measures engine overhead + a cheap
/// simulation rather than a heavyweight domain run.
exp::CampaignSpec bench_spec() {
  exp::CampaignSpec spec;
  spec.name = "bench";
  spec.domain = "serverless";
  spec.mode = exp::CampaignMode::kGrid;
  spec.repeats = 2;
  spec.seed = 11;
  spec.scale = 0.05;
  spec.dims = {
      {"keep_alive", {"0", "60", "300", "600"}},
      {"prewarmed", {"0", "2"}},
      {"max_instances", {"32"}},
  };
  return spec;
}

// Fresh campaign end to end (enumerate, hash, simulate, aggregate) with
// range(0) runner threads and a memory-only store per iteration.
// Items/sec counts trials executed.
void BM_CampaignFresh(benchmark::State& state) {
  const auto spec = bench_spec();
  const auto adapter = exp::make_serverless_adapter();
  exp::RunnerConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  std::size_t trials = 0;
  for (auto _ : state) {
    exp::ResultStore store;  // memory-only: no disk in the timing loop
    const auto outcome = exp::run_campaign(spec, *adapter, store, config);
    trials = outcome.tasks.size();
    benchmark::DoNotOptimize(outcome.aggregate.ranked.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trials) *
                          state.iterations());
}
BENCHMARK(BM_CampaignFresh)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Re-run against a pre-populated store: every trial is a memo hit, so
// this is the resume/checkpoint overhead per trial (descriptor render,
// FNV hash, map lookup, aggregation).
void BM_CampaignMemoizedRerun(benchmark::State& state) {
  const auto spec = bench_spec();
  const auto adapter = exp::make_serverless_adapter();
  exp::RunnerConfig config;
  config.threads = 1;
  exp::ResultStore store;
  exp::run_campaign(spec, *adapter, store, config);  // populate once
  std::size_t trials = 0;
  for (auto _ : state) {
    const auto outcome = exp::run_campaign(spec, *adapter, store, config);
    trials = outcome.tasks.size();
    benchmark::DoNotOptimize(outcome.aggregate.ranked.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trials) *
                          state.iterations());
}
BENCHMARK(BM_CampaignMemoizedRerun);

// Raw memo-key cost: descriptor render + FNV-1a + seed derivation for one
// trial (the per-trial fixed cost every mode pays).
void BM_TrialKeyDerivation(benchmark::State& state) {
  const auto spec = bench_spec();
  const auto adapter = exp::make_serverless_adapter();
  const exp::BoundSpace space(*adapter, spec);
  const auto point = space.grid_point(3);
  std::uint32_t repeat = 0;
  for (auto _ : state) {
    auto task = exp::make_trial(spec, space, point, repeat++ % 2, 0);
    benchmark::DoNotOptimize(task.key.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrialKeyDerivation);

// JSONL round-trip for one stored trial: render_line is private, so this
// measures the read side (parse_trial_line) on a representative row.
void BM_TrialLineParse(benchmark::State& state) {
  const std::string line =
      "{\"key\":\"0123456789abcdef\",\"domain\":\"serverless\","
      "\"repeat\":1,\"seed\":42,\"params\":{\"keep_alive\":\"300\","
      "\"prewarmed\":\"2\",\"max_instances\":\"32\"},"
      "\"objective\":1.82,\"metrics\":{\"p50_latency\":0.61,"
      "\"p95_latency\":1.82,\"p99_latency\":2.75,\"cold_fraction\":0.25}}";
  exp::TrialRecord record;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::parse_trial_line(line, record));
    benchmark::DoNotOptimize(record.metrics.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrialLineParse);

}  // namespace

ATLARGE_BENCH_JSON_MAIN("BENCH_campaign.json")
