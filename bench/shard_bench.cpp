// Google-benchmark coverage of the sharded parallel DES (sim/sharded.hpp)
// through its two ported engines: the zone-partitioned MMOG world
// (mmog::simulate_zones) and the swarm-network P2P ecosystem
// (p2p::simulate_swarm_network). Each benchmark runs the same workload
// across shard/thread layouts, so the JSON doubles as a scaling table:
// the speedup at N threads is the items_per_second ratio between the
// /N/N and /1/1 rows. The shards/threads of every row are stamped into
// its counters, alongside the cross-LP message count and the number of
// conservative windows the run needed.
//
// The headline rows are the ISSUE targets: a million-avatar MMOG
// ecosystem and a million-peer flashcrowd, single-iteration so CI cost
// stays bounded. NOTE: realized speedup tracks the physical cores of the
// machine recording the run — the committed BENCH_shard.json encodes the
// CI runner's core count, and the perf gate compares like to like.
//
// Run with `--json[=path]` (default BENCH_shard.json). Regenerate with:
//   ./build/bench/shard_bench --json=BENCH_shard.json

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_json_main.hpp"

#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/p2p/swarmnet.hpp"

using namespace atlarge;

namespace {

void stamp(benchmark::State& state, std::uint64_t windows,
           std::uint64_t messages) {
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["messages"] = static_cast<double>(messages);
}

// ------------------------------------------------------------ MMOG world --

mmog::ZoneSimConfig zone_world(std::size_t zones, double horizon) {
  mmog::ZoneSimConfig config;
  config.zones = zones;
  config.act_mean = 30.0;
  config.migrate_prob = 0.08;
  config.crossing_time = 5.0;  // interest radius / avatar speed
  config.session_mean = 900.0;
  config.horizon = horizon;
  config.seed = 9;
  return config;
}

const std::vector<mmog::ZoneArrival>& zone_arrivals(std::size_t avatars,
                                                    std::size_t zones,
                                                    double window) {
  static std::vector<mmog::ZoneArrival> cache;
  static std::size_t cached = 0;
  if (cached != avatars) {
    cache = mmog::synthetic_zone_arrivals(avatars, zones, window, 9);
    cached = avatars;
  }
  return cache;
}

void BM_ShardedZoneSim(benchmark::State& state) {
  auto config = zone_world(64, 1'200.0);
  config.shard.shards = static_cast<std::size_t>(state.range(0));
  config.shard.threads = static_cast<std::size_t>(state.range(1));
  const auto& arrivals = zone_arrivals(12'000, config.zones, 400.0);
  std::uint64_t actions = 0, windows = 0, messages = 0;
  for (auto _ : state) {
    const auto result = mmog::simulate_zones(config, arrivals);
    actions = result.actions;
    windows = result.windows;
    messages = result.messages;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(actions) *
                          state.iterations());
  stamp(state, windows, messages);
}

void BM_ZoneSimMillionAvatars(benchmark::State& state) {
  auto config = zone_world(256, 600.0);
  config.act_mean = 60.0;
  config.session_mean = 400.0;
  config.shard.shards = static_cast<std::size_t>(state.range(0));
  config.shard.threads = static_cast<std::size_t>(state.range(1));
  const auto& arrivals = zone_arrivals(1'000'000, config.zones, 300.0);
  std::uint64_t actions = 0, windows = 0, messages = 0;
  for (auto _ : state) {
    const auto result = mmog::simulate_zones(config, arrivals);
    actions = result.actions;
    windows = result.windows;
    messages = result.messages;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(actions) *
                          state.iterations());
  stamp(state, windows, messages);
}

// ------------------------------------------------------- P2P swarm network --

p2p::SwarmNetConfig swarm_net(std::size_t swarms, double horizon) {
  p2p::SwarmNetConfig config;
  config.swarms = swarms;
  config.content_mb = 50.0;
  config.epoch = 10.0;
  config.announce_interval = 60.0;  // the conservative lookahead
  config.horizon = horizon;
  config.seed = 9;
  return config;
}

const std::vector<p2p::PeerArrival>& net_arrivals(std::size_t peers,
                                                  std::size_t swarms,
                                                  double horizon) {
  static std::vector<p2p::PeerArrival> cache;
  static std::size_t cached = 0;
  if (cached != peers) {
    cache = p2p::flashcrowd_net_arrivals(peers, swarms, horizon,
                                         horizon / 4.0, 0.4, 9);
    cached = peers;
  }
  return cache;
}

void BM_ShardedSwarmNet(benchmark::State& state) {
  auto config = swarm_net(32, 8'000.0);
  config.shard.shards = static_cast<std::size_t>(state.range(0));
  config.shard.threads = static_cast<std::size_t>(state.range(1));
  const auto& arrivals = net_arrivals(16'000, config.swarms, config.horizon);
  std::uint64_t windows = 0, messages = 0;
  for (auto _ : state) {
    const auto result = p2p::simulate_swarm_network(config, arrivals);
    windows = result.windows;
    messages = result.messages;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(arrivals.size()) * state.iterations());
  stamp(state, windows, messages);
}

void BM_SwarmNetMillionPeers(benchmark::State& state) {
  auto config = swarm_net(64, 2'000.0);
  config.content_mb = 20.0;
  config.initial_seeds = 4;
  config.seed_upload_mbps = 40.0;
  config.shard.shards = static_cast<std::size_t>(state.range(0));
  config.shard.threads = static_cast<std::size_t>(state.range(1));
  const auto& arrivals =
      net_arrivals(1'000'000, config.swarms, config.horizon);
  std::uint64_t windows = 0, messages = 0;
  for (auto _ : state) {
    const auto result = p2p::simulate_swarm_network(config, arrivals);
    windows = result.windows;
    messages = result.messages;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(arrivals.size()) * state.iterations());
  stamp(state, windows, messages);
}

BENCHMARK(BM_ShardedZoneSim)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedSwarmNet)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ZoneSimMillionAvatars)
    ->Args({1, 1})
    ->Args({8, 8})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwarmNetMillionPeers)
    ->Args({1, 1})
    ->Args({8, 8})
    ->Iterations(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

ATLARGE_BENCH_JSON_MAIN("BENCH_shard.json")
