// Google-benchmark coverage of the ecosystem composition layer
// (eco/ecosystem.hpp). Three questions, one JSON:
//   * BM_EcosystemComposed — the fully bound ecosystem (serverless on the
//     fabric, autoscaled zones, shared-fabric DAGs) across shard/thread
//     layouts; the /N/N-to-/1/1 items_per_second ratio is the scaling
//     table for the composed engine.
//   * BM_EcosystemIdentity — the same workloads under identity bindings
//     (no cross-domain coupling), i.e. the composition machinery priced
//     with its couplings turned off.
//   * BM_StandaloneSerial — the three standalone simulators run
//     back-to-back on the identical workloads. Identity-vs-serial is the
//     pure overhead of hosting the domains on one shared kernel (eco_test
//     proves the results are byte-identical, so this is a fair race).
//
// items_per_second counts domain events (invocations + avatar actions +
// scheduled tasks), so rows are comparable across all three benchmarks.
//
// Run with `--json[=path]` (default BENCH_eco.json). Regenerate with:
//   ./build/bench/eco_bench --json=BENCH_eco.json

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_json_main.hpp"

#include "atlarge/cluster/machine.hpp"
#include "atlarge/eco/ecosystem.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/workflow/generators.hpp"

using namespace atlarge;

namespace {

eco::EcosystemSpec base_spec() {
  eco::EcosystemSpec spec;
  spec.horizon = 4'800.0;
  spec.fabric.machines = 16;
  spec.fabric.cores_per_machine = 8;
  spec.fabric.provisioning_delay = 45.0;

  spec.serverless.enabled = true;
  spec.serverless.backing = eco::ServerlessBacking::kCluster;
  spec.serverless.instance_cores = 1;
  spec.serverless.registry = {{"api", 0.08, 0.9, 128.0},
                              {"etl", 0.5, 1.8, 512.0},
                              {"ml", 1.2, 2.5, 1024.0}};
  spec.serverless.config.keep_alive = 120.0;
  stats::Rng faas_rng(17);
  spec.serverless.invocations = serverless::bursty_invocations(
      spec.serverless.registry.size(), 2.0, 3'600.0, 300.0, 60, faas_rng);

  spec.mmog.enabled = true;
  spec.mmog.provisioning = eco::ZoneProvisioning::kAutoscaled;
  spec.mmog.autoscaler = "React";
  spec.mmog.avatars_per_machine = 48;
  spec.mmog.report_interval = 30.0;
  spec.mmog.initial_machines = 1;
  spec.mmog.config.zones = 16;
  spec.mmog.config.crossing_time = 5.0;
  spec.mmog.config.act_mean = 25.0;
  spec.mmog.config.migrate_prob = 0.1;
  spec.mmog.config.session_mean = 2'400.0;
  spec.mmog.config.seed = 7;
  spec.mmog.arrivals =
      mmog::synthetic_zone_arrivals(4'000, spec.mmog.config.zones, 2'400.0, 7);

  spec.dags.enabled = true;
  spec.dags.scheduling = eco::DagScheduling::kSharedFabric;
  spec.dags.policy = "FCFS";
  workflow::WorkloadSpec jobs;
  jobs.cls = workflow::WorkloadClass::kSynthetic;
  jobs.jobs = 64;
  jobs.horizon = 2'400.0;
  jobs.seed = 5;
  spec.dags.workload = workflow::generate(jobs);
  return spec;
}

eco::EcosystemSpec identity_spec() {
  eco::EcosystemSpec spec = base_spec();
  spec.serverless.backing = eco::ServerlessBacking::kAbstract;
  spec.mmog.provisioning = eco::ZoneProvisioning::kUnlimited;
  spec.dags.scheduling = eco::DagScheduling::kDedicated;
  spec.dags.machines = spec.fabric.machines;
  spec.dags.cores_per_machine = spec.fabric.cores_per_machine;
  return spec;
}

std::uint64_t domain_events(const eco::EcosystemResult& r) {
  return static_cast<std::uint64_t>(r.faas.invocations.size()) +
         r.zones.actions + static_cast<std::uint64_t>(r.dags.tasks_completed);
}

void BM_EcosystemComposed(benchmark::State& state) {
  eco::EcosystemSpec spec = base_spec();
  spec.shards = static_cast<std::size_t>(state.range(0));
  spec.threads = static_cast<std::size_t>(state.range(1));
  std::uint64_t events = 0, windows = 0, messages = 0;
  for (auto _ : state) {
    const auto result = eco::run_ecosystem(spec);
    events = domain_events(result);
    windows = result.windows;
    messages = result.messages;
  }
  state.counters["shards"] = static_cast<double>(spec.shards);
  state.counters["threads"] = static_cast<double>(spec.threads);
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["messages"] = static_cast<double>(messages);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      events * static_cast<std::uint64_t>(state.iterations())));
}

void BM_EcosystemIdentity(benchmark::State& state) {
  const eco::EcosystemSpec spec = identity_spec();
  std::uint64_t events = 0;
  for (auto _ : state) events = domain_events(eco::run_ecosystem(spec));
  state.SetItemsProcessed(static_cast<std::int64_t>(
      events * static_cast<std::uint64_t>(state.iterations())));
}

void BM_StandaloneSerial(benchmark::State& state) {
  // The identical workloads through the three standalone simulators.
  const eco::EcosystemSpec spec = identity_spec();
  mmog::ZoneSimConfig zones = spec.mmog.config;
  zones.horizon = spec.horizon;
  const auto env = cluster::make_homogeneous_cluster(
      "eco", spec.dags.machines, spec.dags.cores_per_machine);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto faas = serverless::run_platform(
        spec.serverless.registry, spec.serverless.invocations,
        spec.serverless.config);
    sched::FcfsPolicy policy;
    sched::SimOptions options;
    const auto dags =
        sched::simulate(env, spec.dags.workload, policy, options);
    const auto world = mmog::simulate_zones(zones, spec.mmog.arrivals);
    events = static_cast<std::uint64_t>(faas.invocations.size()) +
             world.actions +
             static_cast<std::uint64_t>(dags.tasks_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      events * static_cast<std::uint64_t>(state.iterations())));
}

BENCHMARK(BM_EcosystemComposed)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({8, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EcosystemIdentity)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StandaloneSerial)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

ATLARGE_BENCH_JSON_MAIN("BENCH_eco.json")
