// The ecosystem composition study (Sections 2.2, 5.1): the AtLarge
// "system of systems" — serverless functions, MMOG zones, and workflow
// DAGs co-tenant on one cluster fabric, advanced by one shared clock.
// The default run prices co-tenancy by contrasting identity bindings
// (each domain on its own dedicated substrate, byte-identical to the
// standalone simulators) against cluster bindings (everyone leasing from
// the same machines).
//
// Modes:
//   --sharded [--shards=N --threads=M]   layout-invariant summary of the
//       canonical bound ecosystem on stdout; the eco-smoke CI job diffs
//       an 8-shard run against the unsharded output.
//   --replay=<scenario> [--max-events=N] replay a trace::catalog scenario
//       through the eco engine (eco-faas-vs-reserved); stdout is the
//       ReplaySummary text diffed against the committed golden.
//   --trace/--metrics-out                instrumented run exporting the
//       span timeline / metrics registry as JSON.

#include <cstdio>
#include <string>

#include "atlarge/eco/ecosystem.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/trace/catalog.hpp"
#include "atlarge/workflow/generators.hpp"
#include "bench_util.hpp"

using namespace atlarge;

namespace {

/// The canonical composed ecosystem: every domain enabled, every binding
/// live. Deterministic on any shards x threads layout.
eco::EcosystemSpec bound_spec() {
  eco::EcosystemSpec spec;
  spec.horizon = 4'800.0;
  spec.fabric.machines = 12;
  spec.fabric.cores_per_machine = 8;
  spec.fabric.provisioning_delay = 45.0;

  spec.serverless.enabled = true;
  spec.serverless.backing = eco::ServerlessBacking::kCluster;
  spec.serverless.instance_cores = 1;
  spec.serverless.registry = {{"api", 0.08, 0.9, 128.0},
                              {"etl", 0.5, 1.8, 512.0},
                              {"ml", 1.2, 2.5, 1024.0}};
  spec.serverless.config.keep_alive = 120.0;
  spec.serverless.config.prewarmed = 0;
  stats::Rng faas_rng(17);
  spec.serverless.invocations = serverless::bursty_invocations(
      spec.serverless.registry.size(), 1.2, 3'600.0, 300.0, 40, faas_rng);

  spec.mmog.enabled = true;
  spec.mmog.provisioning = eco::ZoneProvisioning::kAutoscaled;
  spec.mmog.autoscaler = "React";
  spec.mmog.avatars_per_machine = 48;
  spec.mmog.report_interval = 30.0;
  spec.mmog.initial_machines = 1;
  spec.mmog.config.zones = 8;
  spec.mmog.config.crossing_time = 5.0;
  spec.mmog.config.act_mean = 25.0;
  spec.mmog.config.migrate_prob = 0.1;
  spec.mmog.config.session_mean = 2'400.0;
  spec.mmog.config.seed = 7;
  spec.mmog.arrivals =
      mmog::synthetic_zone_arrivals(600, spec.mmog.config.zones, 2'400.0, 7);

  spec.dags.enabled = true;
  spec.dags.scheduling = eco::DagScheduling::kSharedFabric;
  spec.dags.policy = "FCFS";
  workflow::WorkloadSpec jobs;
  jobs.cls = workflow::WorkloadClass::kSynthetic;
  jobs.jobs = 48;
  jobs.horizon = 2'400.0;
  jobs.seed = 5;
  spec.dags.workload = workflow::generate(jobs);
  return spec;
}

/// The same workloads with identity bindings: serverless on its abstract
/// instance pool, zones with unlimited capacity, DAGs on a dedicated
/// cluster. eco_test proves this composition reproduces the standalone
/// simulators exactly — it is the "no ecosystem effects" baseline.
eco::EcosystemSpec identity_spec() {
  eco::EcosystemSpec spec = bound_spec();
  spec.serverless.backing = eco::ServerlessBacking::kAbstract;
  spec.mmog.provisioning = eco::ZoneProvisioning::kUnlimited;
  spec.dags.scheduling = eco::DagScheduling::kDedicated;
  spec.dags.machines = spec.fabric.machines;
  spec.dags.cores_per_machine = spec.fabric.cores_per_machine;
  return spec;
}

void print_summary(const eco::EcosystemResult& result) {
  std::fputs(result.summary().c_str(), stdout);
  std::fprintf(stderr, "windows=%llu messages=%llu (layout-dependent)\n",
               static_cast<unsigned long long>(result.windows),
               static_cast<unsigned long long>(result.messages));
}

/// `--sharded`: the determinism contract as a CLI artifact. stdout is
/// byte-identical on every --shards/--threads layout; CI diffs them.
void sharded_mode(int argc, char** argv) {
  eco::EcosystemSpec spec = bound_spec();
  spec.shards = bench::u64_flag(argc, argv, "--shards", 1);
  spec.threads = bench::u64_flag(argc, argv, "--threads", 1);
  print_summary(eco::run_ecosystem(spec));
  std::fprintf(stderr, "shards=%llu threads=%llu\n",
               static_cast<unsigned long long>(spec.shards),
               static_cast<unsigned long long>(spec.threads));
}

/// `--replay=<scenario>`: catalog replay through the eco engine; the
/// eco-smoke CI job diffs this against the committed golden summary.
int replay_mode(const std::string& name, int argc, char** argv) {
  const trace::catalog::Scenario* scenario =
      trace::catalog::find(name.c_str());
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
    return 2;
  }
  trace::catalog::ReplayOptions options;
  options.max_events = static_cast<std::size_t>(
      bench::u64_flag(argc, argv, "--max-events", 8'000));
  const auto summary = trace::catalog::replay_generated(
      *scenario, scenario->default_seed, options);
  std::fputs(summary.text().c_str(), stdout);
  return 0;
}

void study_composition() {
  bench::header("Ecosystem composition: three domains, one fabric");
  const auto isolated = eco::run_ecosystem(identity_spec());
  const auto composed = eco::run_ecosystem(bound_spec());

  std::printf("%-28s %14s %14s\n", "metric", "isolated", "composed");
  const auto row = [](const char* name, double a, double b) {
    std::printf("%-28s %14.3f %14.3f\n", name, a, b);
  };
  row("faas p95 latency (s)", isolated.faas.p95_latency,
      composed.faas.p95_latency);
  row("faas p999 latency (s)", isolated.faas.p999_latency,
      composed.faas.p999_latency);
  row("faas cold fraction", isolated.faas.cold_fraction,
      composed.faas.cold_fraction);
  row("faas failed", static_cast<double>(isolated.faas.failed_invocations),
      static_cast<double>(composed.faas.failed_invocations));
  row("fabric faas denials",
      static_cast<double>(isolated.fabric.faas_denials),
      static_cast<double>(composed.fabric.faas_denials));
  row("zone residents", static_cast<double>(isolated.zones.residents),
      static_cast<double>(composed.zones.residents));
  row("zone queued logins",
      static_cast<double>(isolated.zones.queued_logins),
      static_cast<double>(composed.zones.queued_logins));
  row("dag mean wait (s)", isolated.dags.mean_wait, composed.dags.mean_wait);
  row("dag mean slowdown", isolated.dags.mean_slowdown,
      composed.dags.mean_slowdown);
  row("fabric machine leases",
      static_cast<double>(isolated.fabric.machine_leases),
      static_cast<double>(composed.fabric.machine_leases));
  row("fabric peak cores leased",
      static_cast<double>(isolated.fabric.peak_cores_leased),
      static_cast<double>(composed.fabric.peak_cores_leased));
  std::printf(
      "=> the isolated column is byte-identical to the standalone "
      "simulators (eco_test pins it);\n   the composed column is the same "
      "workload paying for cold provisioning, capacity grants,\n   and "
      "scheduler co-tenancy on the shared fabric.\n");
}

/// Re-runs the composed ecosystem with the observability plane attached
/// and exports the span timeline (--trace) / metrics registry
/// (--metrics-out) — the eco.* counters mirror the fabric ledger.
void instrumented_run(const std::string& trace_path,
                      const std::string& metrics_path) {
  bench::header("Instrumented run (--trace/--metrics-out)");
  obs::Observability plane;
  eco::EcosystemSpec spec = bound_spec();
  spec.obs = &plane;
  const auto result = eco::run_ecosystem(spec);
  std::printf("faas p95 %.3f s, %llu machine leases, %llu grants\n",
              result.faas.p95_latency,
              static_cast<unsigned long long>(result.fabric.machine_leases),
              static_cast<unsigned long long>(result.fabric.capacity_updates));
  if (!trace_path.empty()) {
    if (!plane.tracer.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      std::exit(1);
    }
    bench::note("trace: " + std::to_string(plane.tracer.size()) +
                " records -> " + trace_path);
  }
  if (!metrics_path.empty()) {
    bench::write_text_file(metrics_path, plane.metrics.json());
    bench::note("metrics -> " + metrics_path);
  }
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == name) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string replay = bench::flag_value(argc, argv, "--replay");
  if (!replay.empty()) return replay_mode(replay, argc, argv);
  if (has_flag(argc, argv, "--sharded")) {
    sharded_mode(argc, argv);
    return 0;
  }
  study_composition();
  const std::string trace = bench::trace_flag(argc, argv);
  const std::string metrics = bench::flag_value(argc, argv, "--metrics-out");
  if (!trace.empty() || !metrics.empty()) instrumented_run(trace, metrics);
  return 0;
}
