// Figure 2: count of design articles in selected systems venues since
// 1980, in 5-year blocks — censored for venues that started later, with
// an incomplete final block, exactly as the paper describes.

#include <cstdio>

#include "atlarge/design/bibliometrics.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlarge;
  bench::header("Figure 2: design-article counts per 5-year block");

  const auto config = design::paper_corpus_config();
  const auto corpus = design::generate_corpus(config);
  const auto blocks = design::design_articles_per_block(corpus);

  std::printf("\n%-12s", "venue");
  for (int y : blocks.block_start_years) std::printf(" %6d", y);
  std::printf("\n");
  for (std::size_t v = 0; v < config.venues.size(); ++v) {
    std::printf("%-12s", config.venues[v].name.c_str());
    for (std::size_t b = 0; b < blocks.counts[v].size(); ++b)
      std::printf(" %6zu", blocks.counts[v][b]);
    std::printf("\n");
  }

  // Aggregate trend: post-2000 blocks vs pre-2000 blocks.
  std::size_t pre = 0;
  std::size_t post = 0;
  for (std::size_t v = 0; v < blocks.counts.size(); ++v) {
    for (std::size_t b = 0; b < blocks.counts[v].size(); ++b) {
      if (blocks.block_start_years[b] < 2000) {
        pre += blocks.counts[v][b];
      } else {
        post += blocks.counts[v][b];
      }
    }
  }
  std::printf("\nTotal design articles: %zu before 2000, %zu after.\n", pre,
              post);
  std::printf(
      "Paper claim reproduced: 'a marked increase in design articles\n"
      "accepted for publication since 2000' (post/pre ratio %.1fx).\n",
      pre > 0 ? static_cast<double>(post) / pre : 0.0);
  return 0;
}
