#pragma once
// Shared formatting helpers for the experiment harnesses. Each bench
// binary regenerates one table or figure of the paper as aligned text,
// so EXPERIMENTS.md can quote the output directly.

#include <cstdio>
#include <string>

namespace atlarge::bench {

inline void header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

}  // namespace atlarge::bench
