#pragma once
// Shared formatting helpers for the experiment harnesses. Each bench
// binary regenerates one table or figure of the paper as aligned text,
// so EXPERIMENTS.md can quote the output directly.

#include <cstdio>
#include <cstring>
#include <string>

namespace atlarge::bench {

inline void header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

/// Output path of a `--trace <file>` / `--trace=<file>` flag, or "" when
/// absent. Harnesses that support it re-run one representative experiment
/// with an obs::Observability attached and export a Chrome trace there.
inline std::string trace_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) return argv[i] + 8;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      return argv[i + 1];
  }
  return "";
}

}  // namespace atlarge::bench
