#pragma once
// Shared formatting helpers for the experiment harnesses. Each bench
// binary regenerates one table or figure of the paper as aligned text,
// so EXPERIMENTS.md can quote the output directly.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace atlarge::bench {

inline void header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

/// Output path of a `--trace <file>` / `--trace=<file>` flag, or "" when
/// absent. Harnesses that support it re-run one representative experiment
/// with an obs::Observability attached and export a Chrome trace there.
inline std::string trace_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) return argv[i] + 8;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      return argv[i + 1];
  }
  return "";
}

/// Writes `text` to `path`, exiting with a message on I/O failure. Used by
/// the `--metrics-out` exporters (the TimeSeries/FlightRecorder classes
/// have their own write_* helpers).
inline void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || std::fwrite(text.data(), 1, text.size(), f) !=
                          text.size() ||
      std::fclose(f) != 0) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
}

/// Raw value of a `--name=<v>` / `--name <v>` flag, or "" when absent.
inline std::string flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return argv[i] + len + 1;
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
      return argv[i + 1];
  }
  return "";
}

/// Double-valued flag (`--faults=20`), or `fallback` when absent.
inline double double_flag(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string v = flag_value(argc, argv, name);
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

/// Unsigned flag (`--fault-seed=7`), or `fallback` when absent.
inline std::uint64_t u64_flag(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  const std::string v = flag_value(argc, argv, name);
  return v.empty()
             ? fallback
             : static_cast<std::uint64_t>(
                   std::strtoull(v.c_str(), nullptr, 10));
}

}  // namespace atlarge::bench
