// Graphalytics kernel benchmarks: serial vs parallel timings for every
// kernel on three dataset families (social = preferential attachment,
// random = Erdos-Renyi, grid = 2D lattice), plus "legacy" baselines that
// reproduce the pre-CSR-rewrite implementations (per-call vector<vector>
// undirected adjacency, unordered_map label voting, binary-search triangle
// counting, comparison-sort CSR build) so the speedup of the rewrite is
// measurable inside one JSON snapshot.
//
//   graph_bench --json[=path]   # emit google-benchmark JSON (BENCH_graph.json)
//   graph_bench --tiny          # shrink datasets for CI smoke runs
//
// Benchmark arguments: {dataset, threads} where dataset is
// 0=social, 1=random, 2=grid.

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/graph.hpp"
#include "atlarge/stats/rng.hpp"
#include "bench_json_main.hpp"

using namespace atlarge;

namespace {

bool g_tiny = false;

const graph::Graph& dataset(int idx) {
  // Built lazily so --tiny (parsed in main, after static registration)
  // takes effect. Sizes in full mode match the table8 social dataset.
  static const graph::Graph social = [] {
    stats::Rng rng(3);
    return graph::preferential_attachment(g_tiny ? 500 : 20'000,
                                          g_tiny ? 4 : 8, rng);
  }();
  static const graph::Graph random = [] {
    stats::Rng rng(4);
    return graph::erdos_renyi(g_tiny ? 500 : 20'000, g_tiny ? 4.0 : 8.0, rng);
  }();
  static const graph::Graph grid =
      graph::grid_2d(g_tiny ? 20 : 141);  // ~n matches the other families
  switch (idx) {
    case 0: return social;
    case 1: return random;
    default: return grid;
  }
}

graph::KernelOptions opts_of(benchmark::State& state) {
  graph::KernelOptions opts;
  opts.threads = static_cast<std::uint32_t>(state.range(1));
  return opts;
}

void set_work(benchmark::State& state, const graph::WorkProfile& work) {
  state.counters["edges_traversed"] =
      benchmark::Counter(static_cast<double>(work.edges_traversed));
  state.counters["iterations"] =
      benchmark::Counter(static_cast<double>(work.iterations));
}

void BM_Bfs(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto opts = opts_of(state);
  graph::BfsResult r;
  for (auto _ : state) {
    r = graph::bfs(g, 0, opts);
    benchmark::DoNotOptimize(r.depth.data());
  }
  set_work(state, r.work);
}

void BM_PageRank(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto opts = opts_of(state);
  graph::PageRankResult r;
  for (auto _ : state) {
    r = graph::pagerank(g, 10, 0.85, opts);
    benchmark::DoNotOptimize(r.rank.data());
  }
  set_work(state, r.work);
}

void BM_Wcc(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto opts = opts_of(state);
  graph::WccResult r;
  for (auto _ : state) {
    r = graph::wcc(g, opts);
    benchmark::DoNotOptimize(r.component.data());
  }
  set_work(state, r.work);
}

void BM_Cdlp(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto opts = opts_of(state);
  graph::CdlpResult r;
  for (auto _ : state) {
    r = graph::cdlp(g, 5, opts);
    benchmark::DoNotOptimize(r.label.data());
  }
  set_work(state, r.work);
}

void BM_Lcc(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto opts = opts_of(state);
  graph::LccResult r;
  for (auto _ : state) {
    r = graph::lcc(g, opts);
    benchmark::DoNotOptimize(r.coefficient.data());
  }
  set_work(state, r.work);
}

void BM_Sssp(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto opts = opts_of(state);
  graph::SsspResult r;
  for (auto _ : state) {
    r = graph::sssp(g, 0, opts);
    benchmark::DoNotOptimize(r.distance.data());
  }
  set_work(state, r.work);
}

// ---- Legacy baselines (pre-rewrite implementations, serial only) ----

// CDLP as it was before the rewrite: unordered_map vote counting over
// out+in neighborhoods, no shared undirected view.
std::vector<graph::VertexId> cdlp_legacy(const graph::Graph& g,
                                         std::uint32_t iterations) {
  const std::size_t n = g.num_vertices();
  std::vector<graph::VertexId> label(n), next(n);
  for (graph::VertexId v = 0; v < n; ++v) label[v] = v;
  std::unordered_map<graph::VertexId, std::uint32_t> votes;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (graph::VertexId v = 0; v < n; ++v) {
      votes.clear();
      for (graph::VertexId u : g.out(v)) ++votes[label[u]];
      for (graph::VertexId u : g.in(v)) ++votes[label[u]];
      if (votes.empty()) {
        next[v] = label[v];
        continue;
      }
      graph::VertexId best = label[v];
      std::uint32_t best_count = 0;
      for (const auto& [candidate, count] : votes) {
        if (count > best_count ||
            (count == best_count && candidate < best)) {
          best = candidate;
          best_count = count;
        }
      }
      next[v] = best;
    }
    label.swap(next);
  }
  return label;
}

// LCC as it was before the rewrite: materialize vector<vector> undirected
// adjacency per call, binary-search each neighbor pair.
double lcc_legacy(const graph::Graph& g) {
  const auto adj = g.undirected_adjacency();
  const std::size_t n = adj.size();
  double total = 0.0;
  for (graph::VertexId v = 0; v < n; ++v) {
    const auto& neighbors = adj[v];
    const std::size_t d = neighbors.size();
    if (d < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        const auto& a = adj[neighbors[i]];
        if (std::binary_search(a.begin(), a.end(), neighbors[j])) ++closed;
      }
    }
    total += 2.0 * static_cast<double>(closed) /
             (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

void BM_CdlpLegacy(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto label = cdlp_legacy(g, 5);
    benchmark::DoNotOptimize(label.data());
  }
}

void BM_LccLegacy(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double mean = lcc_legacy(g);
    benchmark::DoNotOptimize(mean);
  }
}

// ---- CSR construction: counting sort (current) vs comparison sort ----

void BM_FromEdges(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto edges = g.edge_list();
  const auto n = static_cast<graph::VertexId>(g.num_vertices());
  for (auto _ : state) {
    auto copy = edges;
    auto built = graph::Graph::from_edges(n, std::move(copy));
    benchmark::DoNotOptimize(built.num_edges());
  }
}

// The pre-rewrite build strategy: comparison-sort the edge list, then a
// linear dedup/fill pass (out-CSR only; in/undirected views not priced to
// keep the comparison conservative).
void BM_FromEdgesLegacy(benchmark::State& state) {
  const auto& g = dataset(static_cast<int>(state.range(0)));
  const auto edges = g.edge_list();
  const std::size_t n = g.num_vertices();
  for (auto _ : state) {
    auto copy = edges;
    std::sort(copy.begin(), copy.end());
    copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
    std::vector<std::uint64_t> offsets(n + 1, 0);
    std::vector<graph::VertexId> heads(copy.size());
    for (const auto& e : copy) ++offsets[e.first + 1];
    for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    for (std::size_t i = 0; i < copy.size(); ++i) heads[i] = copy[i].second;
    benchmark::DoNotOptimize(heads.data());
  }
}

void register_benchmarks() {
  const std::vector<std::pair<const char*,
                              void (*)(benchmark::State&)>> kernels = {
      {"BM_Bfs", BM_Bfs},   {"BM_PageRank", BM_PageRank},
      {"BM_Wcc", BM_Wcc},   {"BM_Cdlp", BM_Cdlp},
      {"BM_Lcc", BM_Lcc},   {"BM_Sssp", BM_Sssp},
  };
  for (const auto& [name, fn] : kernels) {
    auto* b = benchmark::RegisterBenchmark(name, fn);
    b->ArgNames({"dataset", "threads"});
    for (int dataset_idx : {0, 1, 2})
      for (int threads : {1, 8}) b->Args({dataset_idx, threads});
  }
  for (const auto& [name, fn] :
       std::vector<std::pair<const char*, void (*)(benchmark::State&)>>{
           {"BM_CdlpLegacy", BM_CdlpLegacy},
           {"BM_LccLegacy", BM_LccLegacy},
           {"BM_FromEdges", BM_FromEdges},
           {"BM_FromEdgesLegacy", BM_FromEdgesLegacy}}) {
    auto* b = benchmark::RegisterBenchmark(name, fn);
    b->ArgNames({"dataset"});
    for (int dataset_idx : {0, 1, 2}) b->Args({dataset_idx});
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      g_tiny = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  register_benchmarks();
  return atlarge::bench::run_benchmarks_with_json_flag(
      static_cast<int>(args.size()), args.data(), "BENCH_graph.json");
}
