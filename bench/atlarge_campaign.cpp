// atlarge_campaign: the unified front door of the atlarge::exp campaign
// engine. Runs declarative design-space campaigns over the domain
// simulators with trial memoization and checkpoint/resume.
//
//   atlarge_campaign run <spec-file> [--threads=N] [--out=DIR]
//                                    [--max-trials=N] [--trace=FILE]
//   atlarge_campaign domains
//   atlarge_campaign example [domain]
//
// `run` executes the campaign described by the spec file (see
// atlarge/exp/campaign.hpp for the format), persisting per-trial results
// to <out>/results.jsonl as it goes. Re-running the same spec resumes:
// completed trials are served from the store and only missing ones
// execute. Artifacts written to the output directory (default
// campaign-<name>/):
//
//   results.jsonl   one JSON object per completed trial (crash-safe log)
//   aggregate.json  ranked configurations, CIs, per-dimension marginals
//   metrics.json    obs metrics snapshot (exp.trials_* counters etc.)
//
// --threads=N     override the spec's worker thread count
// --max-trials=N  execute at most N new trials this invocation, then stop
//                 (exit code 3; re-run to resume — CI uses this to test
//                 the kill/resume path deterministically)
// --trace=FILE    export a Chrome trace of the campaign fan-out
//
// Exit codes: 0 = campaign complete; 2 = usage/spec error; 3 = campaign
// incomplete (trial cap hit — resume by re-running).

#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "atlarge/exp/adapters.hpp"
#include "atlarge/exp/engine.hpp"
#include "atlarge/obs/observability.hpp"

namespace {

using namespace atlarge;

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: atlarge_campaign run <spec-file> [--threads=N] [--out=DIR]\n"
      "                                        [--max-trials=N] "
      "[--trace=FILE]\n"
      "       atlarge_campaign domains\n"
      "       atlarge_campaign example [domain]\n");
  return to == stderr ? 2 : 0;
}

/// Value of `--name=value` or `--name value`; empty when absent.
std::string flag_value(const std::vector<std::string>& args,
                       const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind(prefix, 0) == 0) return args[i].substr(prefix.size());
    if (args[i] == "--" + name && i + 1 < args.size()) return args[i + 1];
  }
  return "";
}

std::size_t parse_count(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw std::invalid_argument(std::string("bad ") + what + " '" + text +
                                "'");
  return static_cast<std::size_t>(v);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.flush();
  return out.good();
}

int cmd_domains() {
  for (const auto& domain : exp::adapter_domains()) {
    const auto adapter = exp::make_adapter(domain);
    std::printf("%s  (objective: %s)\n", domain.c_str(),
                adapter->objective().c_str());
    for (const auto& param : adapter->params()) {
      std::printf("  %-22s", param.name.c_str());
      for (std::size_t i = 0; i < param.values.size(); ++i)
        std::printf(" %s", param.option_label(i).c_str());
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_example(const std::string& domain) {
  const auto adapter = exp::make_adapter(domain);
  std::printf("# Example %s campaign. Save as <name>.campaign and run:\n",
              domain.c_str());
  std::printf("#   atlarge_campaign run <name>.campaign\n");
  std::printf("campaign %s-example\n", domain.c_str());
  std::printf("domain %s\n", domain.c_str());
  std::printf("mode grid                 # grid | random | explore\n");
  std::printf("repeats 2                 # repetitions per design point\n");
  std::printf("seed 42\n");
  std::printf("scale 0.25                # workload scale in (0, 1]\n");
  std::printf("threads 2\n");
  std::printf("# dim lines restrict a parameter to a subset of its\n");
  std::printf("# options; unlisted parameters keep every option.\n");
  for (const auto& param : adapter->params()) {
    std::printf("dim %s", param.name.c_str());
    for (std::size_t i = 0; i < param.values.size(); ++i)
      std::printf(" %s", param.option_label(i).c_str());
    std::printf("\n");
  }
  return 0;
}

int cmd_run(const std::string& spec_path,
            const std::vector<std::string>& args) {
  const auto spec = exp::load_campaign_spec(spec_path);
  const auto adapter = exp::make_adapter(spec.domain);

  std::string out_dir = flag_value(args, "out");
  if (out_dir.empty()) out_dir = "campaign-" + spec.name;
  std::filesystem::create_directories(out_dir);

  obs::Observability plane;
  exp::ResultStore store(out_dir + "/results.jsonl");
  if (store.discarded_lines() > 0)
    std::printf("-- store repair: kept %zu trials, dropped %zu broken "
                "line(s)\n",
                store.recovered(), store.discarded_lines());
  else if (store.recovered() > 0)
    std::printf("-- resuming: %zu completed trial(s) on record\n",
                store.recovered());

  exp::RunnerConfig config;
  config.obs = &plane;
  config.threads = 0;  // 0: run_campaign falls back to the spec's threads
  const std::string threads = flag_value(args, "threads");
  if (!threads.empty()) config.threads = parse_count(threads, "--threads");
  const std::string cap = flag_value(args, "max-trials");
  if (!cap.empty()) {
    config.max_executed = parse_count(cap, "--max-trials");
    if (config.max_executed == 0)
      throw std::invalid_argument("--max-trials must be >= 1");
  }

  const auto outcome = exp::run_campaign(spec, *adapter, store, config);

  std::printf("campaign %s  domain=%s  mode=%s  threads=%zu\n",
              spec.name.c_str(), spec.domain.c_str(),
              exp::to_string(spec.mode).c_str(),
              config.threads == 0 ? spec.threads : config.threads);
  std::printf("trials: %zu requested, %zu executed, %zu memoized, "
              "%zu skipped  (%.0f ms)\n",
              outcome.stats.requested, outcome.stats.executed,
              outcome.stats.memoized, outcome.stats.skipped,
              outcome.stats.wall_ms);
  std::printf("%s", exp::aggregate_table(outcome.aggregate, spec.top_k)
                        .c_str());

  if (!write_file(out_dir + "/aggregate.json",
                  exp::aggregate_json(outcome.aggregate) + "\n"))
    throw std::runtime_error("cannot write " + out_dir + "/aggregate.json");
  if (!write_file(out_dir + "/metrics.json", plane.metrics.json() + "\n"))
    throw std::runtime_error("cannot write " + out_dir + "/metrics.json");

  const std::string trace_path = flag_value(args, "trace");
  if (!trace_path.empty() && !plane.tracer.write_chrome_json(trace_path))
    throw std::runtime_error("cannot write trace " + trace_path);

  std::printf("artifacts: %s/{results.jsonl, aggregate.json, "
              "metrics.json}\n",
              out_dir.c_str());
  if (!outcome.complete) {
    std::printf("campaign INCOMPLETE (trial cap hit); re-run to resume.\n");
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(stderr);
  const std::string command = args.front();
  try {
    if (command == "help" || command == "--help" || command == "-h")
      return usage(stdout);
    if (command == "domains") return cmd_domains();
    if (command == "example")
      return cmd_example(args.size() > 1 ? args[1] : "serverless");
    if (command == "run") {
      if (args.size() < 2 || args[1].rfind("--", 0) == 0) {
        std::fprintf(stderr, "atlarge_campaign run: missing spec file\n");
        return 2;
      }
      return cmd_run(args[1], {args.begin() + 2, args.end()});
    }
    std::fprintf(stderr, "atlarge_campaign: unknown command '%s'\n",
                 command.c_str());
    return usage(stderr);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "atlarge_campaign: %s\n", error.what());
    return 2;
  }
}
