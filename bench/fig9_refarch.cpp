// Figure 9: the evolving datacenter reference architecture. Prints the
// legacy 4-layer big-data architecture (top panel), the 5+1-layer 2016+
// architecture with its registered components (bottom panel), and the
// validated MapReduce and serverless ecosystem mappings.

#include <cstdio>

#include "atlarge/cluster/refarch.hpp"
#include "bench_util.hpp"

using namespace atlarge;

int main() {
  bench::header("Figure 9: datacenter reference architecture");

  std::printf("\n(top) 2011-2016 big-data architecture, four conceptual "
              "layers:\n");
  for (const auto& layer : cluster::legacy_bigdata_layers())
    std::printf("  - %s\n", layer.c_str());

  const auto ra = cluster::paper_reference_architecture();
  std::printf("\n(bottom) 2016+ full-datacenter architecture (%zu registered "
              "components):\n",
              ra.size());
  for (auto layer : {cluster::Layer::kFrontEnd, cluster::Layer::kBackEnd,
                     cluster::Layer::kResources,
                     cluster::Layer::kOperationsService,
                     cluster::Layer::kInfrastructure,
                     cluster::Layer::kDevOps}) {
    std::printf("  layer %d %-20s:", static_cast<int>(layer),
                cluster::to_string(layer).c_str());
    for (const auto& c : ra.in_layer(layer)) {
      std::printf(" %s", c.name.c_str());
      if (!c.sublayer.empty()) std::printf("[%s]", c.sublayer.c_str());
    }
    std::printf("\n");
  }

  for (const auto& mapping :
       {cluster::mapreduce_ecosystem(), cluster::serverless_ecosystem()}) {
    const auto report = ra.validate(mapping);
    std::printf("\nmapping '%s': components known: %s, layers covered: %zu, "
                "executable: %s\n",
                mapping.name.c_str(),
                report.all_components_known ? "all" : "NO",
                report.covered.size(), report.executable ? "YES" : "no");
  }

  std::printf(
      "\nPaper claim reproduced: the MapReduce ecosystem maps onto the\n"
      "minimum executable layer set; the new architecture additionally\n"
      "captures in-memory storage engines (MemEFS, Pocket, Crail,\n"
      "FlashNet) and DevOps tools (Graphalytics, Granula) the 2011-2016\n"
      "architecture could not express.\n");
  return 0;
}
