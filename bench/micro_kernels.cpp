// Google-benchmark microbenchmarks of the substrate hot paths: the DES
// kernel, the statistics routines, the cluster scheduler, the elastic
// simulator, and the portfolio scheduler's what-if tick. These are
// throughput sanity checks (challenge C3's "calibration" concern): the
// what-if simulations inside the portfolio scheduler are only viable
// online if the kernel is fast.
//
// Run with `--json[=path]` to additionally emit the results as JSON
// (default path BENCH_kernel.json, next to the working directory); the
// repo tracks that file so the kernel's perf trajectory is visible across
// PRs. Regenerate with:
//   ./build/bench/micro_kernels --json=BENCH_kernel.json

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json_main.hpp"

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/portfolio.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/sim/thread_pool.hpp"
#include "atlarge/stats/descriptive.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/workflow/generators.hpp"

using namespace atlarge;

namespace {

// ------------------------------------------------------------ DES kernel --

// The handle-free fast path: schedule-and-fire with the returned handles
// discarded, the shape every substrate's inner loop has.
void BM_SimulationScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      s.schedule_at(static_cast<double>(i % 1'000), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

// Head-to-head backend comparison: the same schedule-and-fire loop on the
// calendar queue. The heap stays the default; this keeps both backends'
// trajectories visible in one JSON snapshot (the calendar wins when the
// schedule is dense and uniform, the heap when batches are tiny or times
// cluster into few buckets — see DESIGN.md "Kernel performance").
void BM_SimulationScheduleRunCalendar(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s(sim::QueueKind::kCalendar);
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      s.schedule_at(static_cast<double>(i % 1'000), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationScheduleRunCalendar)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000);

// The pre-sized fast path domain engines use: reserve() up front, then
// schedule-and-fire with zero system-allocator traffic.
void BM_SimulationScheduleRunReserved(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    s.reserve(events);
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      s.schedule_at(static_cast<double>(i % 1'000), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationScheduleRunReserved)->Arg(100'000);

// Same loop with the obs kernel observer attached but the tracer disabled
// (metrics-only plane): the cost of the counter/gauge updates per event.
void BM_SimulationScheduleRunObserved(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  obs::Observability plane(0);  // capacity 0: no tracing, metrics only
  for (auto _ : state) {
    sim::Simulation s;
    s.set_observer(plane.kernel_observer());
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      s.schedule_at(static_cast<double>(i % 1'000), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationScheduleRunObserved)->Arg(100'000);

// Full plane: kernel observer plus an enabled tracer receiving one instant
// per fired event — the worst-case per-event tracing cost (ring write).
void BM_SimulationScheduleRunTraced(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  obs::Observability plane;
  for (auto _ : state) {
    sim::Simulation s;
    s.set_observer(plane.kernel_observer());
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      s.schedule_at(static_cast<double>(i % 1'000), [&fired, &plane, &s] {
        ++fired;
        plane.tracer.instant("event", "bench", s.now());
      });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationScheduleRunTraced)->Arg(100'000);

// Raw tracer call cost, enabled (ring write + clock read) vs disabled
// (the null-sink fast path: a load and a branch).
void BM_TracerInstantEnabled(benchmark::State& state) {
  obs::Tracer tracer(1 << 16);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&tracer);  // keep enabled_ a real load
    tracer.instant("tick", "bench", t);
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerInstantEnabled);

void BM_TracerInstantDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // default-constructed: disabled
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&tracer);  // keep enabled_ a real load
    tracer.instant("tick", "bench", t);
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerInstantDisabled);

// Continuous telemetry attached: the same schedule-and-fire loop with a
// TimeSeries riding the kernel's sampling hook at the default 1.0s
// interval (1000 boundaries over the i%1000 schedule). The acceptance
// budget for the telemetry plane is <3% over BM_SimulationScheduleRun at
// 100k events; the perf gate tracks both so the delta stays visible.
void BM_SimulationScheduleRunSampled(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  obs::Observability plane(0);
  obs::TimeSeries series(1.0, 2048);
  series.track_counter("fired", plane.metrics.counter("sim.events_fired"));
  series.track_gauge("depth", plane.metrics.gauge("sim.queue_depth"));
  plane.attach_timeseries(&series);
  for (auto _ : state) {
    sim::Simulation s;
    s.set_observer(plane.kernel_observer());
    s.set_sampling_hook(plane.sampling_hook(), plane.sampling_interval());
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      s.schedule_at(static_cast<double>(i % 1'000), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationScheduleRunSampled)->Arg(100'000);

// ------------------------------------------------------------- telemetry --

// Digest insertion: the per-observation hot-path cost domain engines pay
// when a registry digest is attached (frexp + two shifts + an array bump).
void BM_DigestAdd(benchmark::State& state) {
  stats::Rng rng(7);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.uniform(1e-3, 1e3);
  obs::Digest digest;
  std::size_t i = 0;
  for (auto _ : state) {
    digest.add(values[i++ & 4095]);
  }
  benchmark::DoNotOptimize(digest.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DigestAdd);

// Digest merge: the campaign aggregation path (one merge per repeat per
// design point). Items/sec counts merges of a well-populated digest.
void BM_DigestMerge(benchmark::State& state) {
  stats::Rng rng(8);
  obs::Digest source;
  for (std::size_t i = 0; i < 10'000; ++i)
    source.add(rng.uniform(1e-3, 1e3));
  for (auto _ : state) {
    obs::Digest sink;
    sink.merge(source);
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DigestMerge);

// Digest quantile queries on a populated sketch (the SLO monitor pays this
// per evaluation window; exports pay four of them per digest).
void BM_DigestQuantile(benchmark::State& state) {
  stats::Rng rng(9);
  obs::Digest digest;
  for (std::size_t i = 0; i < 10'000; ++i)
    digest.add(rng.uniform(1e-3, 1e3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(digest.quantile(0.99));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DigestQuantile);

// TimeSeries row append in the zero-alloc steady state (ring full, so every
// sample also overwrites the oldest row — the worst case).
void BM_TimeSeriesSample(benchmark::State& state) {
  obs::Registry registry;
  obs::TimeSeries series(1.0, 1024);
  auto& c0 = registry.counter("a");
  auto& c1 = registry.counter("b");
  series.track_counter("a", c0);
  series.track_counter("b", c1);
  series.track_gauge("g", registry.gauge("g"));
  double t = 0.0;
  for (auto _ : state) {
    c0.add(1);
    c1.add(2);
    series.sample(t);
    t += 1.0;
  }
  benchmark::DoNotOptimize(series.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesSample);

// Schedule/cancel churn: half the events are cancelled before they fire,
// exercising handle bookkeeping, tombstone reclamation, and slot reuse.
void BM_SimulationCancelChurn(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    std::size_t fired = 0;
    std::vector<sim::EventHandle> handles;
    handles.reserve(events);
    for (std::size_t i = 0; i < events; ++i) {
      handles.push_back(
          s.schedule_at(static_cast<double>(i % 1'000), [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < events; i += 2) handles[i].cancel();
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationCancelChurn)->Arg(10'000)->Arg(100'000);

// Timer-wheel-style churn: a bounded population of events is repeatedly
// cancelled and rescheduled (the P2P/MMOG keep-alive pattern), so the slot
// pool recycles constantly while the heap stays small.
void BM_SimulationRescheduleChurn(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTimers = 256;
  for (auto _ : state) {
    sim::Simulation s;
    std::size_t fired = 0;
    std::vector<sim::EventHandle> timers(kTimers);
    double now = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
      const std::size_t t = r % kTimers;
      timers[t].cancel();  // the keep-alive arrived; reset the timeout
      timers[t] = s.schedule_at(now + 10.0, [&fired] { ++fired; });
      if (t == kTimers - 1) {
        now += 1.0;
        s.run_until(now);  // pops tombstones whose deadline passed
      }
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds) *
                          state.iterations());
}
BENCHMARK(BM_SimulationRescheduleChurn)->Arg(100'000);

// ------------------------------------------------------------ statistics --

void BM_RngUniform(benchmark::State& state) {
  stats::Rng rng(1);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_Summarize(benchmark::State& state) {
  stats::Rng rng(2);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& x : sample) x = rng.normal(0.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(stats::summarize(sample));
}
BENCHMARK(BM_Summarize)->Arg(1'000)->Arg(100'000);

// ------------------------------------------------------------- scheduler --

void BM_ClusterSchedule(benchmark::State& state) {
  workflow::WorkloadSpec spec;
  spec.cls = workflow::WorkloadClass::kScientific;
  spec.jobs = static_cast<std::size_t>(state.range(0));
  spec.seed = 3;
  const auto wl = workflow::generate(spec);
  const auto env = cluster::make_homogeneous_cluster("c", 8, 8);
  for (auto _ : state) {
    sched::SjfPolicy policy;
    benchmark::DoNotOptimize(sched::simulate(env, wl, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(spec.jobs) *
                          state.iterations());
}
BENCHMARK(BM_ClusterSchedule)->Arg(50)->Arg(200);

// ------------------------------------------------------------- portfolio --

// A synthetic eligible-queue for one portfolio decision: `n` tasks over
// n/8 jobs and 4 users, deterministic runtimes/widths.
std::vector<sched::TaskRef> portfolio_queue(std::size_t n) {
  std::vector<sched::TaskRef> queue;
  queue.reserve(n);
  stats::Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    sched::TaskRef ref;
    ref.job_id = i / 8;
    ref.task_id = static_cast<std::uint32_t>(i % 8);
    ref.runtime = rng.uniform(5.0, 500.0);
    ref.cores = static_cast<std::uint32_t>(1 + i % 4);
    ref.user = "u" + std::to_string(i % 4);
    queue.push_back(std::move(ref));
  }
  return queue;
}

// One full portfolio selection round (candidate what-if simulations plus
// the reduction), with `threads` evaluation lanes and `range(0)` candidate
// policies. Items/sec counts candidate simulations.
void portfolio_tick_bench(benchmark::State& state, std::size_t threads) {
  const auto candidates = static_cast<std::size_t>(state.range(0));
  const auto env = cluster::make_homogeneous_cluster("c", 8, 8);
  sched::PortfolioConfig config;
  config.eval_threads = threads;
  config.active_set = candidates;  // == policy count means "all"
  config.min_queue_to_select = 1;
  config.selection_interval = 1.0;
  sched::PortfolioScheduler portfolio(sched::standard_policies(), env, config);
  const auto queue = portfolio_queue(128);
  sched::SchedState st;
  double now = 0.0;
  for (auto _ : state) {
    st.now = now;
    benchmark::DoNotOptimize(portfolio.tick(st, queue));
    now += config.selection_interval + 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(candidates) *
                          state.iterations());
}

void BM_PortfolioTickSerial(benchmark::State& state) {
  portfolio_tick_bench(state, 1);
}
BENCHMARK(BM_PortfolioTickSerial)->Arg(2)->Arg(4)->Arg(7);

void BM_PortfolioTickParallel(benchmark::State& state) {
  portfolio_tick_bench(state, 4);
}
BENCHMARK(BM_PortfolioTickParallel)->Arg(2)->Arg(4)->Arg(7);

// Raw pool dispatch overhead: how much a parallel_for costs per index when
// the body is trivial (bounds the smallest snapshot worth parallelizing).
void BM_ThreadPoolParallelFor(benchmark::State& state) {
  sim::ThreadPool pool(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n, 0.0);
  for (auto _ : state) {
    pool.parallel_for(n, [&](std::size_t i) { out[i] += 1.0; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(8)->Arg(64);

// ------------------------------------------------------------- autoscale --

void BM_ElasticRun(benchmark::State& state) {
  workflow::WorkloadSpec spec;
  spec.cls = workflow::WorkloadClass::kIndustrial;
  spec.jobs = 30;
  spec.seed = 4;
  const auto wl = workflow::generate(spec);
  for (auto _ : state) {
    autoscale::ReactAutoscaler react;
    benchmark::DoNotOptimize(autoscale::run_elastic(wl, react));
  }
}
BENCHMARK(BM_ElasticRun);

}  // namespace

ATLARGE_BENCH_JSON_MAIN("BENCH_kernel.json")
