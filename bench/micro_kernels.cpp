// Google-benchmark microbenchmarks of the substrate hot paths: the DES
// kernel, the statistics routines, the cluster scheduler, and the elastic
// simulator. These are throughput sanity checks (challenge C3's
// "calibration" concern): the what-if simulations inside the portfolio
// scheduler are only viable online if the kernel is fast.

#include <benchmark/benchmark.h>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/sim/simulation.hpp"
#include "atlarge/stats/descriptive.hpp"
#include "atlarge/stats/rng.hpp"
#include "atlarge/workflow/generators.hpp"

using namespace atlarge;

namespace {

void BM_SimulationScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      s.schedule_at(static_cast<double>(i % 1'000), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulationScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_RngUniform(benchmark::State& state) {
  stats::Rng rng(1);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_Summarize(benchmark::State& state) {
  stats::Rng rng(2);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& x : sample) x = rng.normal(0.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(stats::summarize(sample));
}
BENCHMARK(BM_Summarize)->Arg(1'000)->Arg(100'000);

void BM_ClusterSchedule(benchmark::State& state) {
  workflow::WorkloadSpec spec;
  spec.cls = workflow::WorkloadClass::kScientific;
  spec.jobs = static_cast<std::size_t>(state.range(0));
  spec.seed = 3;
  const auto wl = workflow::generate(spec);
  const auto env = cluster::make_homogeneous_cluster("c", 8, 8);
  for (auto _ : state) {
    sched::SjfPolicy policy;
    benchmark::DoNotOptimize(sched::simulate(env, wl, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(spec.jobs) *
                          state.iterations());
}
BENCHMARK(BM_ClusterSchedule)->Arg(50)->Arg(200);

void BM_ElasticRun(benchmark::State& state) {
  workflow::WorkloadSpec spec;
  spec.cls = workflow::WorkloadClass::kIndustrial;
  spec.jobs = 30;
  spec.seed = 4;
  const auto wl = workflow::generate(spec);
  for (auto _ : state) {
    autoscale::ReactAutoscaler react;
    benchmark::DoNotOptimize(autoscale::run_elastic(wl, react));
  }
}
BENCHMARK(BM_ElasticRun);

}  // namespace

BENCHMARK_MAIN();
