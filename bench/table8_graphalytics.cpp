// Table 8 / Section 6.5: the Graphalytics ecosystem.
//  [105] the PAD law: performance depends on the Platform x Algorithm x
//        Dataset interaction — no platform dominates;
//  [106] HPAD: heterogeneous hardware (GPU) joins the interaction;
//  [100] Granula: fine-grained phase breakdowns;
// plus google-benchmark timings of the native algorithm implementations
// (the "Native-1N" platform measured for real).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include <benchmark/benchmark.h>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/granula.hpp"
#include "atlarge/graph/graph.hpp"
#include "atlarge/graph/pad.hpp"
#include "bench_util.hpp"

using namespace atlarge;

namespace {

void pad_study(std::uint32_t threads) {
  bench::header("[105]+[106] The PAD/HPAD law");
  stats::Rng rng(1);
  const auto social = graph::preferential_attachment(20'000, 8, rng);
  const auto random = graph::erdos_renyi(10'000, 16.0, rng);
  const auto grid = graph::grid_2d(100);
  // Dataset sizes span the Graphalytics range via work-profile
  // extrapolation (NamedGraph::scale): from laptop-size graphs to the
  // billion-edge datasets where platform capacity walls bite.
  const std::vector<graph::NamedGraph> datasets = {
      {"social-S", &social, 1.0},      // ~160k edges
      {"social-L", &social, 500.0},    // ~80M edges
      {"social-XL", &social, 3'000.0}, // ~480M edges
      {"random-L", &random, 500.0},    // ~80M edges
      {"grid-L", &grid, 500.0},        // ~10M edges, high diameter
  };
  const auto platforms = graph::standard_platforms();
  const auto study = graph::run_pad_study(datasets, platforms, threads);

  // Matrix: rows = algorithm x dataset, columns = platforms.
  std::printf("\npredicted runtime (s); * marks the per-row winner\n");
  std::printf("%-22s", "A x D \\ P");
  for (const auto& p : platforms) std::printf(" %14s", p.name.c_str());
  std::printf("\n");
  for (std::size_t row = 0; row < study.winners.size(); ++row) {
    const auto& [label, winner] = study.winners[row];
    std::printf("%-22s", label.c_str());
    for (std::size_t col = 0; col < platforms.size(); ++col) {
      const auto& cell = study.cells[row * platforms.size() + col];
      std::printf(" %12.2f%s", cell.runtime_s,
                  cell.platform == winner ? "*" : " ");
    }
    std::printf("\n");
  }

  std::map<std::string, int> wins;
  for (const auto& [label, winner] : study.winners) ++wins[winner];
  std::printf("\nwins per platform:");
  for (const auto& [name, count] : wins)
    std::printf("  %s=%d", name.c_str(), count);
  std::printf("\ndistinct winners: %zu => the PAD interaction law %s\n",
              study.distinct_winners,
              study.distinct_winners > 1 ? "HOLDS" : "does NOT hold");
}

void granula_study(std::uint32_t threads) {
  bench::header("[100] Granula-style phase breakdown");
  stats::Rng rng(2);
  const auto g = graph::preferential_attachment(20'000, 8, rng);
  const auto platforms = graph::standard_platforms();
  graph::KernelOptions opts;
  opts.threads = threads;
  const auto work = graph::run_algorithm(g, graph::Algorithm::kPageRank, opts);
  std::printf("PageRank on social-20k, per-platform modeled breakdown:\n");
  std::printf("%-14s %10s %10s %10s %10s\n", "platform", "startup%",
              "sync%", "compute%", "total(s)");
  for (const auto& p : platforms) {
    const auto b = graph::modeled_breakdown(p, graph::Algorithm::kPageRank,
                                            work, g.num_vertices(),
                                            g.num_edges());
    std::printf("%-14s %9.1f%% %9.1f%% %9.1f%% %10.2f\n", p.name.c_str(),
                100.0 * b.share("startup"), 100.0 * b.share("sync"),
                100.0 * b.share("compute"), b.total());
  }
  const auto measured = graph::measured_breakdown(
      g.num_vertices(), g.edge_list(), graph::Algorithm::kPageRank, opts);
  std::printf("measured native run: load %.3fs, compute %.3fs\n",
              measured.phases[0].seconds, measured.phases[1].seconds);
}

// Google-benchmark microbenchmarks of the native implementations.
const graph::Graph& bench_graph() {
  static const graph::Graph g = [] {
    stats::Rng rng(3);
    return graph::preferential_attachment(10'000, 8, rng);
  }();
  return g;
}

void BM_Bfs(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(graph::bfs(bench_graph(), 0));
}
BENCHMARK(BM_Bfs);

void BM_PageRank(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::pagerank(bench_graph(), 10));
}
BENCHMARK(BM_PageRank);

void BM_Wcc(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(graph::wcc(bench_graph()));
}
BENCHMARK(BM_Wcc);

void BM_Cdlp(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::cdlp(bench_graph(), 5));
}
BENCHMARK(BM_Cdlp);

void BM_Sssp(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::sssp(bench_graph(), 0));
}
BENCHMARK(BM_Sssp);

}  // namespace

int main(int argc, char** argv) {
  // --threads=N parallelizes the kernel runs behind the studies (results
  // are thread-count independent). Stripped before google-benchmark sees
  // the arguments.
  std::uint32_t threads = 1;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long parsed = std::strtol(argv[i] + 10, nullptr, 10);
      if (parsed > 0) threads = static_cast<std::uint32_t>(parsed);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  pad_study(threads);
  granula_study(threads);
  bench::header("Native-1N measured kernels (google-benchmark)");
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
