// Table 5 / Section 6.1: the P2P studies, reproduced in simulation.
//  [61] aliased media fragments swarms and slows downloads;
//  [62] upload/download asymmetry makes swarms upload-bound;
//  [63] BTWorld-scale ecosystem observation: giant swarms, spam trackers;
//  [65] sampling bias of measurement instruments;
//  [66] flashcrowd identification and the negative phenomena during them;
//  [68] 2fast collaborative downloads exploit idle asymmetric capacity.

#include <cstdio>

#include "atlarge/p2p/ecosystem.hpp"
#include "atlarge/p2p/flashcrowd.hpp"
#include "atlarge/p2p/monitor.hpp"
#include "atlarge/p2p/swarm.hpp"
#include "atlarge/p2p/swarmnet.hpp"
#include "atlarge/p2p/twofast.hpp"
#include "atlarge/workflow/vicissitude.hpp"
#include "bench_util.hpp"
#include "workload_mode.hpp"

using namespace atlarge;

namespace {

p2p::SwarmConfig base_swarm() {
  p2p::SwarmConfig config;
  config.content_mb = 200.0;
  config.seed_upload_mbps = 8.0;
  config.peer_upload_mbps = 1.0;   // ADSL: 8:1 down/up
  config.peer_download_mbps = 8.0;
  config.epoch = 10.0;
  return config;
}

void study_asymmetry() {
  bench::header("[62] Upload/download asymmetry (ADSL)");
  std::printf("%-18s %14s %18s\n", "up:down ratio", "mean DL time",
              "mean rate vs pipe");
  for (double up : {8.0, 4.0, 2.0, 1.0}) {
    auto config = base_swarm();
    config.peer_upload_mbps = up;
    config.seed = 7;
    stats::Rng rng(7);
    const auto arrivals = p2p::poisson_arrivals(0.05, 20'000.0, rng);
    const auto result = p2p::simulate_swarm(config, arrivals, 80'000.0);
    double rate_sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : result.series) {
      if (s.leechers > 0) {
        rate_sum += s.per_leecher_mbps;
        ++n;
      }
    }
    std::printf("1:%-17.0f %12.0f s %16.0f%%\n", 8.0 / up,
                result.mean_download_time,
                100.0 * (rate_sum / n) / config.peer_download_mbps);
  }
  std::printf("=> asymmetric swarms are upload-bound: download pipes idle.\n");
}

void study_flashcrowd() {
  bench::header("[66] Flashcrowd identification and impact");
  stats::Rng rng(13);
  const auto arrivals =
      p2p::flashcrowd_arrivals(0.01, 60'000.0, 600, 20'000.0, 6.0, rng);
  auto config = base_swarm();
  const auto result = p2p::simulate_swarm(config, arrivals, 60'000.0);
  const auto episodes =
      p2p::detect_flashcrowds(result.series, p2p::FlashcrowdConfig{});
  std::printf("injected surge at t=20000s; detected episodes: %zu\n",
              episodes.size());
  for (const auto& ep : episodes) {
    std::printf("  [%8.0f, %8.0f]s peak=%.0f baseline=%.0f magnitude=%.1fx\n",
                ep.start, ep.end, ep.peak_leechers, ep.baseline_leechers,
                ep.magnitude());
  }
  const auto [inside, outside] =
      p2p::rate_inside_outside(result.series, episodes);
  std::printf("per-leecher rate: %.2f Mbps inside vs %.2f Mbps outside "
              "episodes => flashcrowds depress service.\n",
              inside, outside);
}

void study_ecosystem_and_bias() {
  bench::header("[63]+[65] Global ecosystem observation and sampling bias");
  p2p::EcosystemConfig config;
  config.titles = 40;
  config.total_peers = 4'000.0;
  config.horizon = 30'000.0;
  config.trackers = 8;
  config.spam_tracker_fraction = 0.3;
  config.spam_inflation = 4.0;
  config.swarm = base_swarm();
  config.swarm.content_mb = 100.0;
  const auto eco = p2p::simulate_ecosystem(config);
  std::printf("titles=%zu swarms=%zu giant-swarm peak=%u peers\n",
              eco.catalog.size(), eco.swarms.size(),
              eco.giant_swarm_peak());

  std::printf("\n%-34s %12s %14s\n", "monitor configuration", "mean bias",
              "mean |bias|");
  struct Case {
    const char* label;
    p2p::MonitorConfig monitor;
  };
  p2p::MonitorConfig naive;
  naive.tracker_coverage = 1.0;
  naive.deduplicate = false;
  p2p::MonitorConfig dedup;
  dedup.tracker_coverage = 1.0;
  dedup.deduplicate = true;
  p2p::MonitorConfig partial;
  partial.tracker_coverage = 0.3;
  partial.deduplicate = true;
  for (const auto& c : {Case{"full coverage, no dedup (naive)", naive},
                        Case{"full coverage, dedup", dedup},
                        Case{"30% coverage, dedup", partial}}) {
    const auto report = p2p::scrape(eco, config, c.monitor);
    std::printf("%-34s %+11.1f%% %13.1f%%\n", c.label,
                100.0 * report.mean_bias, 100.0 * report.mean_abs_bias);
  }
  std::printf("=> duplication and spam trackers bias naive instruments; "
              "dedup removes duplication but not spam.\n");
}

void study_aliased_media() {
  bench::header("[61] Aliased media fragments swarms");
  p2p::EcosystemConfig config;
  config.titles = 40;
  config.total_peers = 4'000.0;
  config.horizon = 30'000.0;
  config.aliased_fraction = 0.5;
  config.alias_copies = 4;
  config.swarm = base_swarm();
  config.swarm.content_mb = 100.0;
  config.seed = 5;
  const auto eco = p2p::simulate_ecosystem(config);
  const auto [aliased, plain] = eco.aliased_vs_plain_download_time();
  std::printf("mean download time: aliased titles %.0f s vs non-aliased "
              "%.0f s (%.2fx)\n",
              aliased, plain, plain > 0 ? aliased / plain : 0.0);
  std::printf("=> splitting a title's swarm across aliases starves each "
              "alias of seeds.\n");
}

void study_two_fast() {
  bench::header("[68] 2fast collaborative downloads");
  stats::Rng rng(21);
  auto config = base_swarm();
  const auto arrivals = p2p::poisson_arrivals(0.08, 40'000.0, rng);
  const auto swarm = p2p::simulate_swarm(config, arrivals, 60'000.0);
  std::printf("%-12s %18s %10s\n", "group size", "collector DL time",
              "speedup");
  for (std::size_t k : {1, 2, 4, 8}) {
    const auto outcome =
        p2p::evaluate_two_fast(config, swarm.series, 5'000.0, k);
    std::printf("%-12zu %16.0f s %9.2fx\n", k,
                outcome.collector_download_time, outcome.speedup);
  }
  std::printf("=> collaboration converts idle upload into download speed, "
              "saturating at the download pipe.\n");
}

void study_vicissitude() {
  // Discovered while scaling the BTWorld analytics workflow [38]
  // (Section 2.5): near-critical multi-stage pipelines with fluctuating
  // stage capacities show bottlenecks "seemingly at random in various
  // parts of the system" — unlike the classic static bottleneck.
  bench::header("[38] Vicissitude in the BTWorld analytics pipeline");
  std::printf("%-28s %10s %10s %10s %6s\n", "pipeline regime", "saturated",
              "distinct", "rotation", "vic?");
  struct Case {
    const char* label;
    double capacity;
    double noise;
  };
  for (const auto& c :
       {Case{"static bottleneck (90, 0)", 90.0, 0.0},
        Case{"near-critical (115, 0.25)", 115.0, 0.25},
        Case{"headroom + noise (140, .35)", 140.0, 0.35}}) {
    workflow::PipelineConfig config;
    config.stages = 5;
    config.horizon = 20'000.0;
    config.input_rate = 100.0;
    config.stage_capacity = c.capacity;
    config.capacity_noise = c.noise;
    config.burst_factor = c.noise == 0.0 ? 1.0 : 3.0;
    config.burst_share = c.noise == 0.0 ? 0.0 : 0.2;
    config.seed = 3;
    const auto samples = workflow::simulate_pipeline(config);
    const auto report = workflow::analyze_vicissitude(samples);
    std::printf("%-28s %10zu %10zu %10.2f %6s\n", c.label,
                report.saturated_windows, report.distinct_bottlenecks,
                report.rotation_rate, report.vicissitude ? "YES" : "no");
  }
  std::printf("=> vicissitude needs both near-critical load and capacity "
              "fluctuation; a deterministic under-provisioned stage gives "
              "the classic static bottleneck instead.\n");
}

/// The BTWorld ecosystem as a sharded parallel simulation: many fluid
/// swarms plus a tracker, announce-interval lookahead, byte-identical on
/// every shards x threads layout (D-P2P-Sim+, PAPERS.md).
void study_sharded_network(std::size_t shards, std::size_t threads) {
  bench::header("Sharded swarm network (conservative parallel DES)");
  p2p::SwarmNetConfig config;
  config.swarms = 16;
  config.content_mb = 50.0;
  config.horizon = 12'000.0;
  config.seed = 9;
  config.shard.shards = shards;
  config.shard.threads = threads;
  const auto arrivals = p2p::flashcrowd_net_arrivals(
      8'000, config.swarms, config.horizon, 3'000.0, 0.5, config.seed);
  const auto result = p2p::simulate_swarm_network(config, arrivals);
  std::printf("swarms=%zu peers=%zu shards=%zu threads=%zu lookahead=%.0fs "
              "(announce interval)\n",
              config.swarms, arrivals.size(), shards, threads,
              config.announce_interval);
  std::printf("finished=%llu aborted=%llu announcements=%llu grants=%llu "
              "residual=%llu\n",
              static_cast<unsigned long long>(result.finished),
              static_cast<unsigned long long>(result.aborted),
              static_cast<unsigned long long>(result.announcements),
              static_cast<unsigned long long>(result.grants),
              static_cast<unsigned long long>(result.residual_leechers));
  std::printf("mean download time %.0f s; cross-LP messages=%llu\n",
              result.mean_download_time(),
              static_cast<unsigned long long>(result.messages));
  std::printf("=> results are byte-identical on every shards x threads "
              "layout; speedup tracks physical cores (BENCH_shard.json).\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::workload_mode(argc, argv, "video-flashcrowd")) return 0;
  bench::header("Table 5 / Section 6.1: P2P studies");
  study_asymmetry();
  study_flashcrowd();
  study_ecosystem_and_bias();
  study_aliased_media();
  study_two_fast();
  study_vicissitude();
  study_sharded_network(bench::u64_flag(argc, argv, "--shards", 1),
                        bench::u64_flag(argc, argv, "--threads", 1));
  return 0;
}
