// Figure 3: violin plots of review scores at a top distributed-systems
// conference — merit, quality, and topic, split by article category.
// Prints every statistic the figure draws (mean star, median dot, IQR
// bar, clipped whiskers, and the mass below score 3).

#include <cstdio>

#include "atlarge/design/review.hpp"
#include "atlarge/stats/violin.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlarge;
  bench::header("Figure 3: review-score violins by article category");

  design::ReviewModelConfig config;
  config.articles = 400;
  config.seed = 2019;
  const auto reviews = design::generate_reviews(config);
  bench::note("synthetic review corpus, " +
              std::to_string(config.articles) +
              " articles, 3-5 reviewers each, scores in [1,4]");

  for (auto aspect : {design::ReviewAspect::kMerit,
                      design::ReviewAspect::kQuality,
                      design::ReviewAspect::kTopic}) {
    const auto group = design::violins_by_category(reviews, aspect);
    std::printf("\n%s", stats::render_table(group, 3.0).c_str());
  }

  // The two findings, checked numerically.
  const auto merit =
      design::violins_by_category(reviews, design::ReviewAspect::kMerit);
  const auto& design_v = merit.violins[0];
  const auto& nondesign_v = merit.violins[1];
  std::printf("\nFinding (1): design vs non-design merit: median %.2f vs "
              "%.2f, mean %.2f vs %.2f -> design slightly better: %s\n",
              design_v.stats.median, nondesign_v.stats.median,
              design_v.stats.mean, nondesign_v.stats.mean,
              design_v.stats.mean > nondesign_v.stats.mean ? "YES" : "no");
  const double below =
      100.0 * static_cast<double>(design_v.below(3.0)) /
      static_cast<double>(design_v.stats.count);
  std::printf("Finding (2): %.0f%% of design articles score below 3 -> a "
              "significant share is not high-merit: %s\n",
              below, below > 30.0 ? "YES" : "no");
  const auto topic =
      design::violins_by_category(reviews, design::ReviewAspect::kTopic);
  std::printf("Finding (3): topic-fit mean %.2f (of 4) -> CfP focuses "
              "authors: %s\n",
              topic.violins[0].stats.mean,
              topic.violins[0].stats.mean > 3.0 ? "YES" : "no");
  return 0;
}
