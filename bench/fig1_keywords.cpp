// Figure 1: presence of selected keywords in top systems venues.
//
// Regenerates the figure's content from the synthetic bibliographic corpus
// (see DESIGN.md for the substitution rationale): for each venue and
// keyword, the fraction of articles carrying the keyword in the recent
// window (2009-2018), plus the long-run trend for "design".

#include <cstdio>

#include "atlarge/design/bibliometrics.hpp"
#include "bench_util.hpp"

int main() {
  using namespace atlarge;
  bench::header("Figure 1: keyword presence in top systems venues");

  const auto config = design::paper_corpus_config();
  const auto corpus = design::generate_corpus(config);
  bench::note("synthetic corpus, " + std::to_string(corpus.articles.size()) +
              " articles, " + std::to_string(config.venues.size()) +
              " venues, window 2009-2018");

  std::printf("\n%-12s", "venue");
  for (const auto& kw : config.keywords)
    std::printf(" %12s", kw.keyword.c_str());
  std::printf("\n");
  for (std::uint32_t v = 0; v < config.venues.size(); ++v) {
    std::printf("%-12s", config.venues[v].name.c_str());
    for (std::uint32_t k = 0; k < config.keywords.size(); ++k) {
      const double presence =
          design::keyword_presence(corpus, v, k, 2009, 2018);
      std::printf(" %11.1f%%", 100.0 * presence);
    }
    std::printf("\n");
  }

  std::printf("\n'design' presence at ICDCS by decade:\n");
  for (int from = 1981; from <= 2011; from += 10) {
    const int to = from + 9;
    std::printf("  %d-%d: %5.1f%%\n", from, to,
                100.0 * design::keyword_presence(corpus, 0, 0, from, to));
  }
  std::printf(
      "\nPaper claim reproduced: 'design' is a common keyword in top\n"
      "venues, and its presence rises markedly after ~2000.\n");
  return 0;
}
