#pragma once
// Shared main() for the google-benchmark binaries: translates the repo's
// `--json[=path]` convention into google-benchmark's JSON output flags so
// CI and the tracked BENCH_*.json snapshots use one stable spelling
// regardless of the benchmark library version in use.
//
// Usage (exactly once per binary, after all BENCHMARK registrations):
//
//   ATLARGE_BENCH_JSON_MAIN("BENCH_kernel.json")

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace atlarge::bench {

/// Runs the registered benchmarks, rewriting `--json[=path]` (default
/// output path `default_json`) into --benchmark_out/--benchmark_out_format.
/// Returns the process exit code.
inline int run_benchmarks_with_json_flag(int argc, char** argv,
                                         const std::string& default_json) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  std::string json_path;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
      continue;
    }
    args.push_back(argv[i]);
  }
  static std::string out_flag, format_flag;
  if (json) {
    out_flag =
        "--benchmark_out=" + (json_path.empty() ? default_json : json_path);
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace atlarge::bench

#define ATLARGE_BENCH_JSON_MAIN(default_json)                              \
  int main(int argc, char** argv) {                                        \
    return atlarge::bench::run_benchmarks_with_json_flag(argc, argv,       \
                                                         (default_json));  \
  }
