#pragma once
// Shared main() for the google-benchmark binaries: translates the repo's
// `--json[=path]` convention into google-benchmark's JSON output flags so
// CI and the tracked BENCH_*.json snapshots use one stable spelling
// regardless of the benchmark library version in use.
//
// Every run also stamps provenance into the JSON `context` block:
//   * git_sha          — the commit the binary was built from (via the
//                        ATLARGE_GIT_SHA compile definition, "unknown"
//                        outside a git checkout);
//   * atlarge_build_type — CMAKE_BUILD_TYPE of this build, so the perf
//                        gate (bench/compare_bench.py) can refuse to
//                        compare a Debug run against a Release baseline;
//   * queue_backend    — which kernel event-queue backend the process
//                        defaults to. Selectable per run via the
//                        ATLARGE_SIM_QUEUE environment variable ("heap" or
//                        "calendar") for head-to-head comparisons without
//                        a rebuild.
//
// Usage (exactly once per binary, after all BENCHMARK registrations):
//
//   ATLARGE_BENCH_JSON_MAIN("BENCH_kernel.json")

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "atlarge/sim/simulation.hpp"

#ifndef ATLARGE_GIT_SHA
#define ATLARGE_GIT_SHA "unknown"
#endif
#ifndef ATLARGE_BUILD_TYPE
#define ATLARGE_BUILD_TYPE "unknown"
#endif

namespace atlarge::bench {

/// Applies the ATLARGE_SIM_QUEUE selection (if set) and returns the name
/// of the resulting process-wide default backend.
inline const char* apply_queue_backend_env() {
  const char* env = std::getenv("ATLARGE_SIM_QUEUE");
  if (env != nullptr) {
    if (std::strcmp(env, "calendar") == 0)
      sim::set_default_queue_kind(sim::QueueKind::kCalendar);
    else if (std::strcmp(env, "heap") == 0)
      sim::set_default_queue_kind(sim::QueueKind::kHeap);
  }
  return sim::default_queue_kind() == sim::QueueKind::kHeap ? "heap"
                                                            : "calendar";
}

/// Runs the registered benchmarks, rewriting `--json[=path]` (default
/// output path `default_json`) into --benchmark_out/--benchmark_out_format.
/// Returns the process exit code.
inline int run_benchmarks_with_json_flag(int argc, char** argv,
                                         const std::string& default_json) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  std::string json_path;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
      continue;
    }
    args.push_back(argv[i]);
  }
  static std::string out_flag, format_flag;
  if (json) {
    out_flag =
        "--benchmark_out=" + (json_path.empty() ? default_json : json_path);
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::AddCustomContext("git_sha", ATLARGE_GIT_SHA);
  benchmark::AddCustomContext("atlarge_build_type", ATLARGE_BUILD_TYPE);
  benchmark::AddCustomContext("queue_backend", apply_queue_backend_env());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace atlarge::bench

#define ATLARGE_BENCH_JSON_MAIN(default_json)                              \
  int main(int argc, char** argv) {                                        \
    return atlarge::bench::run_benchmarks_with_json_flag(argc, argv,       \
                                                         (default_json));  \
  }
