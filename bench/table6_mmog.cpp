// Table 6 / Section 6.2: the MMOG studies, reproduced in simulation.
//  [71]-[73] population dynamics across genres (diurnal, bursty, flat);
//  [71],[87] dynamic datacenter provisioning vs static peak sizing;
//  [76],[81] RTSenv scalability and Area-of-Simulation;
//  [74] implicit social networks; [77] toxicity detection.

#include <cstdio>
#include <string>
#include <vector>

#include "atlarge/mmog/analytics.hpp"
#include "atlarge/mmog/interest.hpp"
#include "atlarge/mmog/provisioning.hpp"
#include "atlarge/mmog/workload.hpp"
#include "atlarge/mmog/zonesim.hpp"
#include "atlarge/trace/catalog.hpp"
#include "bench_util.hpp"

using namespace atlarge;

namespace {

/// Layout-invariant summary of a zone-ecosystem run: one key=value per
/// line, so `diff` gates sharded vs unsharded replays directly. The
/// layout-dependent diagnostics (windows) go to stderr.
void print_zone_summary(const mmog::ZoneSimResult& result) {
  std::printf("actions=%llu\n",
              static_cast<unsigned long long>(result.actions));
  std::printf("migrations=%llu\n",
              static_cast<unsigned long long>(result.migrations));
  std::printf("arrivals=%llu\n",
              static_cast<unsigned long long>(result.arrivals));
  std::printf("departures=%llu\n",
              static_cast<unsigned long long>(result.departures));
  std::printf("churned=%llu\n",
              static_cast<unsigned long long>(result.churned));
  std::printf("residents=%llu\n",
              static_cast<unsigned long long>(result.residents));
  std::printf("messages=%llu\n",
              static_cast<unsigned long long>(result.messages));
  std::printf("session_seconds_x1e6=%llu\n",
              static_cast<unsigned long long>(result.session_seconds_x1e6));
  std::fprintf(stderr, "windows=%llu (layout-dependent diagnostic)\n",
               static_cast<unsigned long long>(result.windows));
}

/// `--sharded-replay=<scenario>`: adapts a catalog scenario's session
/// starts to zone arrivals and replays them through the sharded zone
/// ecosystem. The summary on stdout is byte-identical across
/// --shards/--threads layouts — the shard-smoke CI job diffs an
/// 8-shard run against the unsharded golden run.
bool sharded_replay_mode(int argc, char** argv) {
  const std::string name = bench::flag_value(argc, argv, "--sharded-replay");
  if (name.empty()) return false;
  const trace::catalog::Scenario* scenario =
      trace::catalog::find(name.c_str());
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
    std::exit(2);
  }

  mmog::ZoneSimConfig config;
  config.zones = 16;
  config.horizon = 4'000.0;
  config.seed = 9;
  config.shard.shards = bench::u64_flag(argc, argv, "--shards", 1);
  config.shard.threads = bench::u64_flag(argc, argv, "--threads", 1);

  const auto events = trace::catalog::events(
      *scenario, bench::u64_flag(argc, argv, "--seed", 9),
      static_cast<std::size_t>(
          bench::u64_flag(argc, argv, "--max-events", 8'000)));
  std::vector<mmog::ZoneArrival> arrivals;
  for (const auto& e : events) {
    if (e.kind != static_cast<std::int64_t>(trace::EventKind::kSessionStart))
      continue;
    if (e.t_seconds() >= config.horizon) continue;
    mmog::ZoneArrival a;
    a.time = e.t_seconds();
    a.avatar = static_cast<std::uint64_t>(e.entity);
    a.zone = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(e.region) % config.zones);
    arrivals.push_back(a);
  }

  std::printf("scenario=%s\n", name.c_str());
  std::printf("zone_arrivals=%zu\n", arrivals.size());
  print_zone_summary(mmog::simulate_zones(config, arrivals));
  std::fprintf(stderr, "shards=%llu threads=%llu\n",
               static_cast<unsigned long long>(config.shard.shards),
               static_cast<unsigned long long>(config.shard.threads));
  return true;
}

/// [76],[81] at ecosystem scale: the zone-partitioned world as a sharded
/// parallel simulation, same results on every layout.
void study_sharded_world(std::size_t shards, std::size_t threads) {
  bench::header("Sharded zone ecosystem (conservative parallel DES)");
  mmog::ZoneSimConfig config;
  config.zones = 32;
  config.horizon = 2'000.0;
  config.seed = 9;
  config.shard.shards = shards;
  config.shard.threads = threads;
  const auto arrivals =
      mmog::synthetic_zone_arrivals(20'000, config.zones, 600.0, config.seed);
  std::printf("zones=%zu avatars=%zu shards=%zu threads=%zu "
              "lookahead=%.0fs (zone crossing time)\n",
              config.zones, arrivals.size(), shards, threads,
              config.crossing_time);
  print_zone_summary(mmog::simulate_zones(config, arrivals));
  std::printf("=> results are byte-identical on every shards x threads "
              "layout; speedup tracks physical cores (BENCH_shard.json).\n");
}

void study_dynamics() {
  bench::header("[71]-[73] Population dynamics per genre");
  std::printf("%-14s %12s %12s %14s\n", "genre", "mean players",
              "peak players", "peak-to-mean");
  for (auto genre : {mmog::Genre::kMmorpg, mmog::Genre::kMoba,
                     mmog::Genre::kOnlineSocial}) {
    mmog::PopulationConfig config;
    config.genre = genre;
    config.days = 14.0;
    config.update_times = {7.0 * 86'400.0};  // one content update
    const auto series = mmog::generate_population(config);
    std::printf("%-14s %12.0f %12.0f %13.2fx\n",
                mmog::to_string(genre).c_str(), series.mean(), series.peak(),
                series.peak_to_mean());
  }
  std::printf("=> strong short-term dynamics; static sizing must pay the "
              "peak-to-mean ratio.\n");
}

void study_provisioning() {
  bench::header("[71],[87] Dynamic vs static resource provisioning");
  mmog::PopulationConfig pop;
  pop.days = 14.0;
  pop.update_times = {7.0 * 86'400.0};
  const auto series = mmog::generate_population(pop);

  std::printf("%-16s %12s %12s %12s %10s\n", "policy", "avg servers",
              "server-hrs", "over-prov", "SLA-viol");
  mmog::ProvisioningConfig config;
  const auto fixed = mmog::provision_static(series, config);
  std::printf("%-16s %12.1f %12.0f %12.1f %9.1f%%\n", "static-peak",
              fixed.avg_servers, fixed.server_hours, fixed.avg_overprovision,
              100.0 * fixed.sla_violation_share);
  for (auto p : {mmog::Predictor::kLastValue, mmog::Predictor::kMovingAverage,
                 mmog::Predictor::kExponential,
                 mmog::Predictor::kLinearTrend}) {
    config.predictor = p;
    const auto r = mmog::provision_dynamic(series, config);
    std::printf("%-16s %12.1f %12.0f %12.1f %9.1f%%\n", r.predictor.c_str(),
                r.avg_servers, r.server_hours, r.avg_overprovision,
                100.0 * r.sla_violation_share);
  }
  std::printf("=> dynamic provisioning cuts server-hours vs static peak "
              "sizing at bounded SLA cost.\n");
}

void study_scalability() {
  bench::header("[76],[81] Interest management scalability (RTSenv-style)");
  mmog::WorldConfig world;
  world.hotspots = 4;
  world.hotspot_fraction = 0.75;
  world.seed = 3;
  mmog::ImConfig config;
  const std::vector<std::size_t> candidates = {
      100, 150, 250, 500, 1'000, 2'000, 4'000, 8'000, 16'000, 32'000};

  std::printf("%-20s %22s\n", "technique", "max entities @30Hz");
  for (auto technique : {mmog::ImTechnique::kZoning,
                         mmog::ImTechnique::kFullReplication,
                         mmog::ImTechnique::kAreaOfSimulation}) {
    const auto max = mmog::max_sustainable_entities(technique, world, config,
                                                    candidates);
    std::printf("%-20s %22zu\n", mmog::to_string(technique).c_str(), max);
  }

  world.entities = 4'000;
  const auto w = mmog::generate_world(world);
  std::printf("\nper-tick detail at 4000 entities:\n%-20s %12s %12s %10s\n",
              "technique", "busiest (ms)", "total (ms)", "imbalance");
  for (auto technique : {mmog::ImTechnique::kZoning,
                         mmog::ImTechnique::kFullReplication,
                         mmog::ImTechnique::kAreaOfSimulation}) {
    const auto report =
        mmog::evaluate_interest_management(technique, w, config);
    std::printf("%-20s %12.2f %12.2f %9.2fx\n", report.technique.c_str(),
                1e3 * report.busiest_server_cost, 1e3 * report.total_cost,
                report.imbalance);
  }
  std::printf("=> scalability depends on how entities cluster at points of "
              "interest; AoS scales furthest.\n");
}

void study_analytics() {
  bench::header("[74],[77] Gaming analytics: social networks, toxicity");
  mmog::MatchLogConfig config;
  config.players = 400;
  config.matches = 4'000;
  config.toxic_fraction = 0.08;
  const auto log = mmog::generate_match_log(config);
  const auto graph =
      mmog::SocialGraph::from_matches(config.players, log.matches);
  std::printf("implicit social network: %zu players, %zu edges, clustering "
              "coefficient %.3f\n",
              graph.players(), graph.edges(),
              graph.clustering_coefficient());
  std::printf("latent-community cohesion of co-play edges: %.1f%%\n",
              100.0 * graph.community_cohesion(log.community));
  const double random_gap = mmog::matchmaking_skill_gap(log, false, 5'000, 1);
  const double skill_gap = mmog::matchmaking_skill_gap(log, true, 5'000, 1);
  std::printf("matchmaking mean skill gap: random %.2f vs skill-based %.2f "
              "(%.1fx fairer)\n",
              random_gap, skill_gap, random_gap / skill_gap);
  std::printf("\ntoxicity detection (threshold sweep):\n%-10s %10s %10s %8s\n",
              "threshold", "precision", "recall", "F1");
  for (double threshold : {0.30, 0.40, 0.50}) {
    const auto out = mmog::detect_toxicity(log, threshold, 40, 2);
    std::printf("%-10.2f %9.1f%% %9.1f%% %8.2f\n", threshold,
                100.0 * out.precision, 100.0 * out.recall, out.f1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (sharded_replay_mode(argc, argv)) return 0;
  bench::header("Table 6 / Section 6.2: MMOG studies");
  study_dynamics();
  study_provisioning();
  study_scalability();
  study_analytics();
  study_sharded_world(bench::u64_flag(argc, argv, "--shards", 1),
                      bench::u64_flag(argc, argv, "--threads", 1));
  return 0;
}
