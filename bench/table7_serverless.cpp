// Table 7 / Section 6.4: serverless studies.
//  [101] serverless economics: pay-per-use vs always-on microservices;
//  [102] the cold-start performance challenge and keep-alive trade-off;
//  Fission Workflows: integrated vs external workflow orchestration;
//  ablation: pre-warmed pool size vs cold-start rate vs billed cost.

#include <cstdio>
#include <cstdlib>

#include "atlarge/fault/fault.hpp"
#include "atlarge/obs/observability.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/serverless/workflow_engine.hpp"
#include "bench_util.hpp"
#include "workload_mode.hpp"

using namespace atlarge;

namespace {

void study_economics() {
  bench::header("[101] Serverless vs microservice economics");
  const auto registry = serverless::uniform_registry(4, 0.2, 1.5);
  std::printf("%-22s %14s %14s %12s\n", "traffic (req/s)", "FaaS billed-s",
              "micro billed-s", "FaaS wins?");
  for (double rate : {0.005, 0.05, 0.5, 5.0}) {
    stats::Rng rng(3);
    const double horizon = 20'000.0;
    const auto invocations = serverless::bursty_invocations(
        4, rate, horizon, horizon / 4.0, 10, rng);
    serverless::PlatformConfig config;
    config.keep_alive = 120.0;
    const auto faas = serverless::run_platform(registry, invocations, config);
    const auto micro = serverless::run_microservice_baseline(
        registry, invocations, 2, horizon);
    std::printf("%-22.3f %14.0f %14.0f %12s\n", rate,
                faas.billed_instance_seconds, micro.billed_instance_seconds,
                faas.billed_instance_seconds < micro.billed_instance_seconds
                    ? "YES"
                    : "no");
  }
  std::printf("=> fine-grained pay-per-use wins for sparse traffic; "
              "always-on capacity wins under sustained load.\n");
}

void study_cold_starts() {
  bench::header("[102] Cold starts: keep-alive and pre-warming ablation");
  const auto registry = serverless::uniform_registry(4, 0.2, 1.5);
  stats::Rng rng(5);
  const auto invocations =
      serverless::bursty_invocations(4, 0.05, 20'000.0, 4'000.0, 15, rng);

  std::printf("%-24s %10s %10s %10s %14s\n", "configuration", "cold%",
              "p50 (s)", "p99 (s)", "billed-s");
  struct Case {
    const char* label;
    serverless::PlatformConfig config;
  };
  serverless::PlatformConfig ephemeral;
  ephemeral.keep_alive = 10.0;
  serverless::PlatformConfig standard;
  standard.keep_alive = 600.0;
  serverless::PlatformConfig sticky;
  sticky.keep_alive = 3'600.0;
  serverless::PlatformConfig prewarmed = standard;
  prewarmed.prewarmed = 2;
  for (const auto& c :
       {Case{"keep-alive 10s", ephemeral}, Case{"keep-alive 600s", standard},
        Case{"keep-alive 3600s", sticky},
        Case{"600s + 2 pre-warmed", prewarmed}}) {
    const auto r = serverless::run_platform(registry, invocations, c.config);
    std::printf("%-24s %9.1f%% %10.3f %10.3f %14.0f\n", c.label,
                100.0 * r.cold_fraction, r.p50_latency, r.p99_latency,
                r.billed_instance_seconds);
  }
  std::printf("=> longer retention and pre-warming trade billed idle time "
              "for tail latency.\n");
}

void study_orchestration() {
  bench::header("Fission Workflows: integrated vs external orchestration");
  const auto registry = serverless::uniform_registry(6, 0.15, 1.0);
  std::vector<workflow::Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(serverless::make_chain_workflow(8, 6, i * 100.0));
    jobs.push_back(serverless::make_fanout_workflow(6, 6, i * 100.0 + 50.0));
  }

  std::printf("%-28s %12s %12s %14s\n", "orchestrator", "mean mk (s)",
              "p95 mk (s)", "overhead (s)");
  serverless::OrchestratorConfig integrated;
  integrated.kind = serverless::OrchestratorKind::kIntegratedEngine;
  serverless::OrchestratorConfig polling;
  polling.kind = serverless::OrchestratorKind::kExternalPolling;
  polling.poll_interval = 1.0;
  for (const auto& [label, orch] :
       {std::pair{"integrated engine", integrated},
        std::pair{"external poller (1s)", polling}}) {
    const auto r = serverless::run_workflows(registry, jobs, {}, orch);
    std::printf("%-28s %12.2f %12.2f %14.1f\n", label, r.mean_makespan,
                r.p95_makespan, r.orchestration_overhead);
  }
  std::printf("=> event-driven orchestration inside the platform removes "
              "per-step polling latency.\n");
}

/// Chaos study (--faults=<rate> [--fault-seed=<n>]): replays the cold-start
/// workload under a seeded fault plan (message loss/delay + cold-start
/// failures, `rate` events per 1000 s) and compares retry policies. The
/// plan is deterministic in (rate, seed), so runs are reproducible.
void study_faults(double rate, std::uint64_t seed) {
  bench::header("Fault injection: retry policies under a seeded plan");
  const double horizon = 20'000.0;
  const auto registry = serverless::uniform_registry(4, 0.2, 1.5);
  stats::Rng rng(5);
  const auto invocations =
      serverless::bursty_invocations(4, 0.05, horizon, 4'000.0, 15, rng);

  fault::FaultSpec fspec;
  fspec.rate = rate;
  fspec.horizon = horizon;
  fspec.seed = seed;
  fspec.targets = static_cast<std::uint32_t>(registry.size());
  fspec.mean_duration = 120.0;
  fspec.kinds = {fault::FaultKind::kMessageLoss,
                 fault::FaultKind::kMessageDelay,
                 fault::FaultKind::kColdStartFailure};
  const auto plan = fault::FaultPlan::generate(fspec);
  bench::note("plan: " + std::to_string(plan.size()) + " events (rate " +
              std::to_string(rate) + "/1000s, seed " + std::to_string(seed) +
              ")");

  struct Case {
    const char* label;
    fault::RetryPolicy retry;
  };
  fault::RetryPolicy none;  // defaults: single attempt, no timeout
  fault::RetryPolicy timeout_only;
  timeout_only.timeout = 10.0;
  fault::RetryPolicy retries;
  retries.max_attempts = 4;
  retries.timeout = 10.0;
  std::printf("%-26s %10s %8s %8s %10s %10s\n", "retry policy", "success%",
              "failed", "retries", "p99 (s)", "billed-s");
  for (const auto& c : {Case{"no retry, no timeout", none},
                        Case{"timeout 10s, 1 attempt", timeout_only},
                        Case{"timeout 10s, 4 attempts", retries}}) {
    serverless::PlatformConfig config;
    config.keep_alive = 600.0;
    config.faults = &plan;
    config.retry = c.retry;
    const auto r = serverless::run_platform(registry, invocations, config);
    std::printf("%-26s %9.1f%% %8zu %8zu %10.3f %10.0f\n", c.label,
                100.0 * r.success_rate, r.failed_invocations, r.retries,
                r.p99_latency, r.billed_instance_seconds);
  }
  std::printf("=> retries recover fault-window failures at the price of "
              "extra billed time and tail latency.\n");
}

/// Re-runs one representative FaaS experiment with the observability plane
/// attached and exports whatever was asked for: the span timeline as a
/// Chrome trace (--trace), the final registry state as JSON
/// (--metrics-out), the continuous sim-time series sampled every 60 s
/// (--timeseries-out, JSON or CSV by extension), and the causal
/// flight-recorder snapshot (--flight-out, Chrome trace format).
void instrumented_run(const std::string& trace_path,
                      const std::string& metrics_path,
                      const std::string& series_path,
                      const std::string& flight_path) {
  bench::header("Instrumented run "
                "(--trace/--metrics-out/--timeseries-out/--flight-out)");
  const auto registry = serverless::uniform_registry(4, 0.2, 1.5);
  stats::Rng rng(5);
  const auto invocations =
      serverless::bursty_invocations(4, 0.05, 20'000.0, 4'000.0, 15, rng);

  obs::Observability plane;
  obs::TimeSeries series(60.0);
  series.track_counter("requests", plane.metrics.counter("faas.requests"));
  series.track_counter("cold_starts",
                       plane.metrics.counter("faas.cold_starts"));
  series.track_counter("failed", plane.metrics.counter("faas.failed"));
  series.track_gauge("live_instances",
                     plane.metrics.gauge("faas.live_instances"));
  plane.attach_timeseries(&series);
  obs::FlightRecorder flight;
  plane.attach_flight(&flight);

  serverless::PlatformConfig config;
  config.keep_alive = 600.0;
  config.obs = &plane;
  const auto r = serverless::run_platform(registry, invocations, config);
  std::printf("%zu invocations, %.1f%% cold\n", r.invocations.size(),
              100.0 * r.cold_fraction);

  if (!trace_path.empty()) {
    if (!plane.tracer.write_chrome_json(trace_path)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      std::exit(1);
    }
    bench::note("trace: " + std::to_string(plane.tracer.size()) +
                " records -> " + trace_path);
  }
  if (!metrics_path.empty()) {
    bench::write_text_file(metrics_path, plane.metrics.json());
    bench::note("metrics -> " + metrics_path);
  }
  if (!series_path.empty()) {
    if (series_path.size() > 4 &&
        series_path.compare(series_path.size() - 4, 4, ".csv") == 0) {
      series.write_csv(series_path);
    } else {
      series.write_json(series_path);
    }
    bench::note("timeseries: " + std::to_string(series.size()) + " rows -> " +
                series_path);
  }
  if (!flight_path.empty()) {
    flight.write_chrome_json(flight_path);
    bench::note("flight: " + std::to_string(flight.recorded()) +
                " records over " + std::to_string(flight.entities()) +
                " entities -> " + flight_path);
  }
  bench::note("metrics: " + plane.metrics.json());
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::workload_mode(argc, argv, "feed-fanout")) return 0;
  bench::header("Table 7 / Section 6.4: serverless studies");
  study_economics();
  study_cold_starts();
  study_orchestration();
  const double fault_rate = bench::double_flag(argc, argv, "--faults", 0.0);
  if (fault_rate > 0.0)
    study_faults(fault_rate, bench::u64_flag(argc, argv, "--fault-seed", 1));
  const std::string trace = bench::trace_flag(argc, argv);
  const std::string metrics = bench::flag_value(argc, argv, "--metrics-out");
  const std::string series = bench::flag_value(argc, argv, "--timeseries-out");
  const std::string flight = bench::flag_value(argc, argv, "--flight-out");
  if (!trace.empty() || !metrics.empty() || !series.empty() ||
      !flight.empty())
    instrumented_run(trace, metrics, series, flight);
  return 0;
}
