// Example: a Graphalytics-style benchmarking session (the paper's
// Section 6.5 domain): generate datasets with different structure, run
// the six algorithms natively, price every platform with the PAD models,
// and print a Granula-style breakdown of the winner.

#include <cstdio>

#include "atlarge/graph/algorithms.hpp"
#include "atlarge/graph/granula.hpp"
#include "atlarge/graph/graph.hpp"
#include "atlarge/graph/pad.hpp"

using namespace atlarge;

int main() {
  stats::Rng rng(42);
  const auto social = graph::preferential_attachment(30'000, 6, rng);
  const auto road = graph::grid_2d(170);  // road-network stand-in
  std::printf("Datasets: social (%u vertices, %zu edges), road-like "
              "(%u vertices, %zu edges)\n",
              social.num_vertices(), social.num_edges(),
              road.num_vertices(), road.num_edges());

  // Native runs of the six Graphalytics algorithms on the social graph.
  std::printf("\nNative runs on the social graph:\n");
  const auto bfs = graph::bfs(social, 0);
  std::size_t reached = 0;
  for (auto d : bfs.depth) reached += d != graph::kUnreachable;
  std::printf("  BFS : %zu vertices reached in %u levels\n", reached,
              bfs.work.iterations);
  const auto pr = graph::pagerank(social, 20);
  std::printf("  PR  : 20 iterations, %llu edge traversals\n",
              static_cast<unsigned long long>(pr.work.edges_traversed));
  const auto wcc = graph::wcc(social);
  std::printf("  WCC : %zu weakly connected components\n",
              wcc.num_components);
  const auto cdlp = graph::cdlp(social, 10);
  std::printf("  CDLP: %zu communities after 10 rounds\n",
              cdlp.num_communities);
  const auto lcc = graph::lcc(social);
  std::printf("  LCC : mean local clustering %.4f\n", lcc.mean);
  const auto sssp = graph::sssp(social, 0);
  std::printf("  SSSP: source eccentricity computed (%u settle steps)\n",
              sssp.work.iterations);

  // PAD pricing across the platform archetypes.
  const std::vector<graph::NamedGraph> datasets = {{"social", &social},
                                                   {"road", &road}};
  const auto study =
      graph::run_pad_study(datasets, graph::standard_platforms());
  std::printf("\nBest platform per (algorithm, dataset):\n");
  for (const auto& [label, winner] : study.winners)
    std::printf("  %-16s -> %s\n", label.c_str(), winner.c_str());
  std::printf("Distinct winners: %zu (PAD interaction law %s)\n",
              study.distinct_winners,
              study.distinct_winners > 1 ? "holds" : "does not hold");

  // Granula breakdown for PageRank on the winning platform.
  const auto work = graph::run_algorithm(social, graph::Algorithm::kPageRank);
  const auto platforms = graph::standard_platforms();
  const auto breakdown = graph::modeled_breakdown(
      platforms[3], graph::Algorithm::kPageRank, work,
      social.num_vertices(), social.num_edges());
  std::printf("\nGranula breakdown, %s:\n", breakdown.label.c_str());
  for (const auto& phase : breakdown.phases)
    std::printf("  %-8s %.3f s (%.0f%%)\n", phase.name.c_str(),
                phase.seconds, 100.0 * breakdown.share(phase.name));
  return 0;
}
