// Example: operating an MMOG ecosystem (the paper's Section 6.2 domain):
// forecast the player population, provision game servers dynamically,
// pick an interest-management technique for the virtual world, and run
// the analytics function over the match log.

#include <cstdio>

#include "atlarge/mmog/analytics.hpp"
#include "atlarge/mmog/interest.hpp"
#include "atlarge/mmog/provisioning.hpp"
#include "atlarge/mmog/workload.hpp"

using namespace atlarge;

int main() {
  // Function (1) of the MMOG ecosystem: V-World operation. First, the
  // workload: two weeks of an MMORPG with a content update on day 7.
  mmog::PopulationConfig pop;
  pop.genre = mmog::Genre::kMmorpg;
  pop.base_players = 50'000.0;
  pop.days = 14.0;
  pop.update_times = {7.0 * 86'400.0};
  const auto series = mmog::generate_population(pop);
  std::printf("Population: mean %.0f, peak %.0f (peak-to-mean %.2fx)\n",
              series.mean(), series.peak(), series.peak_to_mean());

  // Dynamic provisioning with a trend predictor vs static peak sizing.
  mmog::ProvisioningConfig prov;
  prov.predictor = mmog::Predictor::kLinearTrend;
  prov.players_per_server = 1'000.0;
  const auto dynamic = mmog::provision_dynamic(series, prov);
  const auto fixed = mmog::provision_static(series, prov);
  std::printf("Provisioning: dynamic %.0f server-hours (%.1f%% SLA "
              "violations) vs static %.0f server-hours\n",
              dynamic.server_hours, 100.0 * dynamic.sla_violation_share,
              fixed.server_hours);

  // Interest management for the in-world simulation.
  mmog::WorldConfig world;
  world.entities = 5'000;
  world.hotspots = 5;
  world.hotspot_fraction = 0.75;
  const auto w = mmog::generate_world(world);
  std::printf("\nVirtual world: %zu entities, %zu hotspots\n",
              w.entities.size(), w.hotspots.size());
  for (auto technique : {mmog::ImTechnique::kZoning,
                         mmog::ImTechnique::kFullReplication,
                         mmog::ImTechnique::kAreaOfSimulation}) {
    const auto report =
        mmog::evaluate_interest_management(technique, w, mmog::ImConfig{});
    std::printf("  %-18s busiest server %.2f ms/tick, imbalance %.2fx, "
                "30Hz-playable: %s\n",
                report.technique.c_str(), 1e3 * report.busiest_server_cost,
                report.imbalance, report.playable ? "yes" : "NO");
  }

  // Functions (2)+(4): gaming analytics and meta-gaming.
  mmog::MatchLogConfig matches;
  matches.players = 600;
  matches.matches = 5'000;
  const auto log = mmog::generate_match_log(matches);
  const auto graph =
      mmog::SocialGraph::from_matches(matches.players, log.matches);
  std::printf("\nAnalytics: implicit social network with %zu edges, "
              "clustering %.3f, community cohesion %.1f%%\n",
              graph.edges(), graph.clustering_coefficient(),
              100.0 * graph.community_cohesion(log.community));
  const auto toxicity = mmog::detect_toxicity(log, 0.4, 40, 3);
  std::printf("Toxicity screening: precision %.0f%%, recall %.0f%%\n",
              100.0 * toxicity.precision, 100.0 * toxicity.recall);
  return 0;
}
