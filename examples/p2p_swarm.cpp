// Example: studying a BitTorrent flashcrowd the way the paper's P2P line
// of work did (Section 6.1) — simulate a swarm hit by a flashcrowd,
// monitor it with a biased instrument, detect the flashcrowd from the
// observed series, and evaluate a 2fast collaboration group.

#include <cstdio>

#include "atlarge/p2p/ecosystem.hpp"
#include "atlarge/p2p/flashcrowd.hpp"
#include "atlarge/p2p/monitor.hpp"
#include "atlarge/p2p/swarm.hpp"
#include "atlarge/p2p/twofast.hpp"

using namespace atlarge;

int main() {
  // A 200 MB torrent, ADSL peers (8:1 down/up), one seed.
  p2p::SwarmConfig config;
  config.content_mb = 200.0;
  config.seed_upload_mbps = 8.0;
  config.peer_upload_mbps = 1.0;
  config.peer_download_mbps = 8.0;
  config.epoch = 10.0;

  stats::Rng rng(2024);
  const auto arrivals =
      p2p::flashcrowd_arrivals(/*base_rate=*/0.01, /*horizon=*/50'000.0,
                               /*surge_peers=*/400, /*surge_start=*/15'000.0,
                               /*surge_mean_gap=*/8.0, rng);
  std::printf("Simulating swarm: %zu peer arrivals over %.0f s\n",
              arrivals.size(), 50'000.0);
  const auto result = p2p::simulate_swarm(config, arrivals, 50'000.0);
  std::printf("finished %zu/%zu peers, mean download %.0f s, peak swarm %u\n",
              result.finished, result.peers.size(),
              result.mean_download_time, result.peak_swarm_size);

  // Detect the flashcrowd from the series (the [66] method).
  const auto episodes =
      p2p::detect_flashcrowds(result.series, p2p::FlashcrowdConfig{});
  for (const auto& ep : episodes) {
    std::printf("flashcrowd detected: [%.0f, %.0f] s, magnitude %.1fx over "
                "baseline\n",
                ep.start, ep.end, ep.magnitude());
  }
  const auto [inside, outside] =
      p2p::rate_inside_outside(result.series, episodes);
  std::printf("per-peer rate: %.2f Mbps during flashcrowd vs %.2f Mbps "
              "otherwise\n",
              inside, outside);

  // A 4-peer 2fast group joining mid-flashcrowd.
  const auto two_fast =
      p2p::evaluate_two_fast(config, result.series, 16'000.0, 4);
  std::printf("2fast group of 4 joining at t=16000: solo %.0f s vs "
              "collector %.0f s (%.2fx speedup)\n",
              two_fast.solo_download_time,
              two_fast.collector_download_time, two_fast.speedup);
  return 0;
}
