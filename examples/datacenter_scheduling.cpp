// Example: operating a multi-cluster datacenter with a portfolio
// scheduler (the Section 6.6 scenario as a user would script it).
//
// A mixed scientific + big-data workload arrives at a 3-cluster
// datacenter. We compare every single policy against the portfolio, then
// let an autoscaler run the same workload on an elastic cloud and price
// it with the standard cost models.

#include <cstdio>

#include "atlarge/autoscale/autoscalers.hpp"
#include "atlarge/autoscale/elastic_sim.hpp"
#include "atlarge/cluster/cost.hpp"
#include "atlarge/cluster/machine.hpp"
#include "atlarge/sched/policies.hpp"
#include "atlarge/sched/portfolio.hpp"
#include "atlarge/sched/simulator.hpp"
#include "atlarge/workflow/generators.hpp"

using namespace atlarge;

namespace {

workflow::Workload mixed_workload() {
  workflow::WorkloadSpec sci;
  sci.cls = workflow::WorkloadClass::kScientific;
  sci.jobs = 40;
  sci.horizon = 4'000.0;
  sci.seed = 11;
  workflow::WorkloadSpec bd;
  bd.cls = workflow::WorkloadClass::kBigData;
  bd.jobs = 20;
  bd.horizon = 4'000.0;
  bd.seed = 12;
  auto wl = workflow::generate(sci);
  auto extra = workflow::generate(bd);
  for (auto& job : extra.jobs) wl.jobs.push_back(std::move(job));
  wl.name = "Sci+BD";
  wl.normalize();
  return wl;
}

}  // namespace

int main() {
  const auto wl = mixed_workload();
  const auto env = cluster::make_multi_cluster("dc", 3, 2, 8);
  std::printf("Workload %s: %zu jobs, %.0f core-seconds of work\n",
              wl.name.c_str(), wl.jobs.size(), wl.total_work());
  std::printf("Environment: %zu machines, %u cores\n", env.total_machines(),
              env.total_cores());

  std::printf("\n%-12s %10s %12s %12s %8s\n", "policy", "makespan",
              "mean slowd.", "p95 slowd.", "util");
  for (auto& policy : sched::standard_policies()) {
    const auto r = sched::simulate(env, wl, *policy);
    std::printf("%-12s %10.0f %12.2f %12.2f %7.0f%%\n",
                policy->name().c_str(), r.makespan, r.mean_slowdown,
                r.p95_slowdown, 100.0 * r.utilization);
  }
  sched::PortfolioScheduler portfolio(sched::standard_policies(), env, {});
  const auto r = sched::simulate(env, wl, portfolio);
  std::printf("%-12s %10.0f %12.2f %12.2f %7.0f%%\n", "PORTFOLIO",
              r.makespan, r.mean_slowdown, r.p95_slowdown,
              100.0 * r.utilization);
  std::printf("portfolio selections:");
  for (const auto& [name, count] : portfolio.selections())
    std::printf(" %s x%zu", name.c_str(), count);
  std::printf("\n");

  // The same workload on an elastic cloud under an autoscaler.
  autoscale::PlanAutoscaler plan;
  autoscale::ElasticConfig elastic;
  elastic.cores_per_machine = 8;
  elastic.max_machines = 16;
  const auto er = autoscale::run_elastic(wl, plan, elastic);
  std::printf("\nElastic cloud under Plan autoscaler: makespan %.0f s, "
              "mean slowdown %.2f, avg supply %.1f cores\n",
              er.makespan, er.mean_slowdown, er.metrics.avg_supply);
  for (const auto& model : cluster::standard_cost_models()) {
    std::printf("  cost under %-16s $%.0f\n", model.name.c_str(),
                model.total_cost(er.makespan, er.rentals));
  }
  return 0;
}
