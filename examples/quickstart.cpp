// Quickstart: the ATLARGE design framework end to end, in ~100 lines.
//
// A design team faces a problem (a rugged design space with a satisficing
// threshold). They run the Basic Design Cycle; its design stage performs
// co-evolving design-space exploration, its dissemination stage records
// artifacts. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "atlarge/design/bdc.hpp"
#include "atlarge/design/catalog.hpp"
#include "atlarge/design/design_space.hpp"
#include "atlarge/design/exploration.hpp"

using namespace atlarge;

int main() {
  // 1. Problem-finding: pick a problem archetype from the catalog.
  const auto catalog = design::paper_problem_catalog();
  const auto& problem_statement = catalog.all().front();
  std::printf("Problem: %s (%s)\n", problem_statement.title.c_str(),
              design::to_string(problem_statement.archetype).c_str());

  // 2. The design space: 12 interacting dimensions, 4 options each;
  // a design satisfices at quality >= 0.75.
  design::DesignProblem problem(/*dims=*/12, /*options=*/4, /*k=*/3,
                                /*satisficing_threshold=*/0.75, /*seed=*/7);
  std::printf("Design space: %.0f candidate designs, satisficing at %.2f\n",
              problem.space_size(), problem.satisficing_threshold());

  // 3. The Basic Design Cycle: wire exploration into stage 4, artifact
  // production into stage 8, and let the stopping criteria decide.
  design::BdcConfig bdc_config;
  bdc_config.satisficing_quality = 0.75;
  bdc_config.designs_target = 1;
  bdc_config.max_iterations = 25;
  design::BasicDesignCycle bdc(bdc_config);

  bdc.on(design::Stage::kFormulateRequirements, [](design::BdcContext& ctx) {
    if (ctx.iteration == 1)
      std::printf("[stage 1] requirements formulated\n");
  });
  bdc.on(design::Stage::kHighAndLowLevelDesign,
         [&](design::BdcContext& ctx) {
           design::ExplorationConfig ec;
           ec.evaluation_budget = 800;
           ec.seed = ctx.rng();
           const auto trace = design::explore_co_evolving(problem, ec);
           if (trace.best_quality > ctx.best_quality) {
             ctx.best_quality = trace.best_quality;
             std::printf("[stage 4] iteration %zu: best quality %.3f\n",
                         ctx.iteration, ctx.best_quality);
           }
           ctx.designs_found += trace.satisficing_designs;
           ctx.space_explored += trace.evaluations_used;
         });
  bdc.on(design::Stage::kDisseminate, [](design::BdcContext& ctx) {
    ctx.artifacts.push_back("article-draft");
    ctx.artifacts.push_back("FOSS-prototype");
  });
  // Dissemination only once a satisficing design exists (skippable
  // stages: the Overall Process's tailoring feature).
  bdc.skip_when(design::Stage::kDisseminate,
                [](const design::BdcContext& ctx) {
                  return ctx.designs_found == 0;
                });

  const auto report = bdc.run();

  std::printf("\nBDC stopped by: %s after %zu iteration(s)\n",
              design::to_string(report.stopped_by).c_str(),
              report.iterations);
  std::printf("best quality %.3f, satisficing designs %zu, artifacts:",
              report.best_quality, report.designs_found);
  for (const auto& a : report.artifacts) std::printf(" %s", a.c_str());
  std::printf("\n");

  // 4. The principles behind what just happened.
  std::printf("\nThe highest principle (P1): %s\n",
              design::principles().front().statement.c_str());
  return report.success() ? 0 : 1;
}
