// Example: a serverless data pipeline (the paper's Section 6.4 domain):
// validate the stack against the Figure 9 reference architecture, run a
// bursty invocation workload on the FaaS platform, compare against an
// always-on microservice deployment, and execute fan-out workflows under
// both orchestrator designs.

#include <cstdio>

#include "atlarge/cluster/refarch.hpp"
#include "atlarge/serverless/platform.hpp"
#include "atlarge/serverless/workflow_engine.hpp"

using namespace atlarge;

int main() {
  // Architecture check: is the Kubernetes-Fission stack executable per
  // the reference architecture?
  const auto ra = cluster::paper_reference_architecture();
  const auto mapping = cluster::serverless_ecosystem();
  const auto validation = ra.validate(mapping);
  std::printf("Stack '%s': %zu layers covered, executable: %s\n",
              mapping.name.c_str(), validation.covered.size(),
              validation.executable ? "yes" : "NO");

  // Four functions: ingest, transform, aggregate, publish.
  std::vector<serverless::FunctionSpec> registry = {
      {"ingest", 0.05, 0.8, 128.0},
      {"transform", 0.30, 1.2, 256.0},
      {"aggregate", 0.20, 1.0, 256.0},
      {"publish", 0.05, 0.8, 128.0},
  };

  stats::Rng rng(7);
  const double horizon = 10'000.0;
  const auto invocations = serverless::bursty_invocations(
      registry.size(), 0.1, horizon, 2'000.0, 30, rng);
  std::printf("\nWorkload: %zu invocations over %.0f s (bursty)\n",
              invocations.size(), horizon);

  serverless::PlatformConfig platform;
  platform.keep_alive = 300.0;
  const auto faas = serverless::run_platform(registry, invocations, platform);
  const auto micro = serverless::run_microservice_baseline(
      registry, invocations, 2, horizon);
  std::printf("FaaS:          p50 %.2fs p99 %.2fs, cold %.1f%%, billed "
              "%.0f inst-s\n",
              faas.p50_latency, faas.p99_latency,
              100.0 * faas.cold_fraction, faas.billed_instance_seconds);
  std::printf("Microservices: p50 %.2fs p99 %.2fs, cold %.1f%%, billed "
              "%.0f inst-s\n",
              micro.p50_latency, micro.p99_latency,
              100.0 * micro.cold_fraction, micro.billed_instance_seconds);

  // Workflows: ingest -> 4x transform -> aggregate, one every 200s.
  std::vector<workflow::Job> workflows;
  for (int i = 0; i < 20; ++i)
    workflows.push_back(
        serverless::make_fanout_workflow(4, registry.size(), i * 200.0));
  serverless::OrchestratorConfig integrated;
  integrated.kind = serverless::OrchestratorKind::kIntegratedEngine;
  serverless::OrchestratorConfig polling;
  polling.kind = serverless::OrchestratorKind::kExternalPolling;
  polling.poll_interval = 1.0;
  const auto fast =
      serverless::run_workflows(registry, workflows, platform, integrated);
  const auto slow =
      serverless::run_workflows(registry, workflows, platform, polling);
  std::printf("\nWorkflows (20 fan-outs): integrated engine mean makespan "
              "%.2f s vs external poller %.2f s\n",
              fast.mean_makespan, slow.mean_makespan);
  std::printf("Orchestration overhead saved: %.1f s total\n",
              slow.orchestration_overhead - fast.orchestration_overhead);
  return 0;
}
